// Verifies, over full protocol executions, that every node's recorded
// state-transition history is a legal walk of the paper's state diagram
// (Fig. 2):
//
//   Z → A₀;  A₀ → C₀ | R;  R → A_{tc(κ₂+1)};
//   A_i → C_i | A_{i+1}   (i > 0, same tc range per Corollary 1);
//   C_i terminal.

#include <gtest/gtest.h>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/sink.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

struct TraceRun {
  graph::Graph graph;
  Params params;
  std::vector<std::vector<Transition>> traces;
  std::vector<std::int32_t> tc;
  bool all_decided = false;
};

TraceRun execute(std::uint64_t seed) {
  TraceRun out;
  Rng rng(seed);
  auto net = graph::random_udg(90, 6.5, 1.4, rng);
  out.graph = std::move(net.graph);
  const auto delta = std::max(2u, out.graph.max_closed_degree());
  out.params = Params::practical(out.graph.num_nodes(), delta, 5, 12);

  std::vector<ColoringNode> nodes;
  for (graph::NodeId v = 0; v < out.graph.num_nodes(); ++v) {
    nodes.emplace_back(&out.params, v);
  }
  Rng wrng(mix_seed(seed, 5));
  radio::Engine<ColoringNode> engine(
      out.graph,
      radio::WakeSchedule::uniform(out.graph.num_nodes(),
                                   2 * out.params.threshold(), wrng),
      std::move(nodes), seed);
  const auto stats = engine.run(default_slot_budget(
      out.params, engine.schedule()));
  out.all_decided = stats.all_decided;
  for (graph::NodeId v = 0; v < out.graph.num_nodes(); ++v) {
    out.traces.push_back(engine.node(v).transitions());
    out.tc.push_back(engine.node(v).intra_cluster_color());
  }
  return out;
}

class TraceLegality : public ::testing::TestWithParam<int> {};

TEST_P(TraceLegality, EveryNodeWalksFig2) {
  const TraceRun run = execute(static_cast<std::uint64_t>(GetParam()) + 71);
  ASSERT_TRUE(run.all_decided);

  for (graph::NodeId v = 0; v < run.graph.num_nodes(); ++v) {
    const auto& trace = run.traces[v];
    ASSERT_GE(trace.size(), 2u) << "node " << v;

    // First state after waking: A_0.
    EXPECT_EQ(trace.front().phase, Phase::kVerify);
    EXPECT_EQ(trace.front().color_index, 0);
    // Last state: some C_i (the run decided).
    EXPECT_EQ(trace.back().phase, Phase::kDecided);

    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
      const Transition& a = trace[i];
      const Transition& b = trace[i + 1];
      EXPECT_LE(a.slot, b.slot) << "node " << v << " step " << i;
      ASSERT_NE(a.phase, Phase::kDecided)
          << "node " << v << ": C_i must be terminal";

      if (a.phase == Phase::kVerify && a.color_index == 0) {
        // A₀ → C₀ or A₀ → R.
        const bool to_leader =
            b.phase == Phase::kDecided && b.color_index == 0;
        const bool to_request = b.phase == Phase::kRequest;
        EXPECT_TRUE(to_leader || to_request) << "node " << v;
      } else if (a.phase == Phase::kRequest) {
        // R → A_{tc(κ₂+1)} with tc ≥ 1.
        ASSERT_EQ(b.phase, Phase::kVerify) << "node " << v;
        EXPECT_GT(b.color_index, 0);
        EXPECT_EQ(b.color_index %
                      (static_cast<std::int32_t>(run.params.kappa2) + 1),
                  0)
            << "node " << v << ": first verify color must be tc*(k2+1)";
      } else {
        // A_i (i>0) → C_i or A_{i+1}.
        ASSERT_EQ(a.phase, Phase::kVerify);
        if (b.phase == Phase::kDecided) {
          EXPECT_EQ(b.color_index, a.color_index) << "node " << v;
        } else {
          ASSERT_EQ(b.phase, Phase::kVerify) << "node " << v;
          EXPECT_EQ(b.color_index, a.color_index + 1) << "node " << v;
        }
      }
    }
  }
}

TEST_P(TraceLegality, VerifyStatesStayInTcRange) {
  // Corollary 1: a node with intra-cluster color tc only ever verifies
  // colors in [tc(κ₂+1), tc(κ₂+1)+κ₂] (whp; we assert it on these runs).
  const TraceRun run = execute(static_cast<std::uint64_t>(GetParam()) + 171);
  ASSERT_TRUE(run.all_decided);
  const auto k2 = static_cast<std::int32_t>(run.params.kappa2);
  for (graph::NodeId v = 0; v < run.graph.num_nodes(); ++v) {
    const std::int32_t tc = run.tc[v];
    if (tc < 0) continue;  // leader: never left A_0
    const std::int32_t lo = tc * (k2 + 1);
    for (const Transition& t : run.traces[v]) {
      if (t.phase == Phase::kVerify && t.color_index > 0) {
        EXPECT_GE(t.color_index, lo) << "node " << v;
        EXPECT_LE(t.color_index, lo + k2) << "node " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceLegality, ::testing::Range(0, 4));

TEST(TraceLegality, TransitionLogCapsAtKMaxTransitionsButNodeKeepsGoing) {
  // Drive one node through far more transitions than the log holds by
  // feeding it M_C^i announcements that keep matching its current verify
  // color.  The recorded history must cap at kMaxTransitions while the
  // state machine itself — and the event stream — keep advancing.
  const Params p = Params::practical(64, 4, 3, 3);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  Rng rng(1);
  obs::MemorySink sink;
  radio::SlotContext ctx;
  ctx.id = 0;
  ctx.rng = &rng;
  ctx.events_sink = &sink;
  ctx.events_fn = [](void* s, const obs::Event& e) {
    static_cast<obs::MemorySink*>(s)->record(e);
  };

  ctx.now = 0;
  node.on_wake(ctx);  // → A₀
  ctx.now = 1;
  node.on_receive(ctx, radio::make_decided(9, 0));  // beacon: A₀ → R
  ctx.now = 2;
  node.on_receive(ctx, radio::make_assign(9, 0, 1));  // R → A_{κ₂+1}
  ASSERT_EQ(node.phase(), Phase::kVerify);
  ASSERT_GT(node.verifying_color(), 0);

  const auto bumps = 2 * ColoringNode::kMaxTransitions;
  for (std::size_t i = 0; i < bumps; ++i) {
    ctx.now = static_cast<Slot>(3 + i);
    node.on_receive(ctx, radio::make_decided(9, node.verifying_color()));
  }

  EXPECT_EQ(node.transitions().size(), ColoringNode::kMaxTransitions);
  // The machine itself is unaffected by the cap...
  EXPECT_EQ(node.phase(), Phase::kVerify);
  EXPECT_GT(static_cast<std::size_t>(node.verifying_color()),
            ColoringNode::kMaxTransitions);
  // ...and so is the event stream: every transition was emitted.
  std::size_t phase_events = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == obs::EventKind::kPhase) ++phase_events;
  }
  EXPECT_EQ(phase_events, 3 + bumps);
  // The capped log is still a legal prefix (slots nondecreasing etc.).
  for (std::size_t i = 0; i + 1 < node.transitions().size(); ++i) {
    EXPECT_LE(node.transitions()[i].slot, node.transitions()[i + 1].slot);
  }
}

TEST(TraceLegality, LeaderTraceIsMinimal) {
  // An isolated node: A₀ → C₀, exactly two records.
  const Params p = Params::practical(16, 2, 2, 3);
  const graph::Graph g = graph::empty_graph(1);
  const auto run = run_coloring(g, p, radio::WakeSchedule::synchronous(1), 1);
  ASSERT_TRUE(run.all_decided);
  // Re-run through the engine to access the node (run_coloring discards it).
  std::vector<ColoringNode> nodes;
  nodes.emplace_back(&p, 0);
  radio::Engine<ColoringNode> eng(g, radio::WakeSchedule::synchronous(1),
                                  std::move(nodes), 1);
  (void)eng.run(10 * p.threshold());
  const auto& trace = eng.node(0).transitions();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].phase, Phase::kVerify);
  EXPECT_EQ(trace[1].phase, Phase::kDecided);
  EXPECT_EQ(trace[1].color_index, 0);
}

}  // namespace
}  // namespace urn::core
