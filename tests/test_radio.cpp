// Tests for the radio substrate: the exact collision semantics of the
// unstructured radio network model (Sect. 2) and the wake-up schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::radio {
namespace {

/// Scripted protocol: transmits in the slots listed in `tx_slots` and
/// records everything it receives.  `decided()` is controlled explicitly.
struct ScriptNode {
  NodeId id = graph::kInvalidNode;
  std::vector<Slot> tx_slots;  // global slot indices
  std::vector<std::pair<Slot, Message>> received;
  Slot wake_at = -1;
  bool done = false;

  void on_wake(SlotContext& ctx) { wake_at = ctx.now; }

  std::optional<Message> on_slot(SlotContext& ctx) {
    if (std::find(tx_slots.begin(), tx_slots.end(), ctx.now) !=
        tx_slots.end()) {
      return make_decided(id, static_cast<std::int32_t>(ctx.now));
    }
    return std::nullopt;
  }

  void on_receive(SlotContext& ctx, const Message& msg) {
    received.emplace_back(ctx.now, msg);
  }

  [[nodiscard]] bool decided() const { return done; }
};

static_assert(NodeProtocol<ScriptNode>);

/// Builds an engine over `g` with the given transmit scripts (one vector of
/// slots per node), all awake at slot 0.
Engine<ScriptNode> scripted(const graph::Graph& g,
                            std::vector<std::vector<Slot>> scripts,
                            WakeSchedule schedule) {
  std::vector<ScriptNode> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes[v].id = v;
    nodes[v].tx_slots = scripts[v];
  }
  return Engine<ScriptNode>(g, std::move(schedule), std::move(nodes), 1);
}

// ------------------------------------------------- collision semantics ----

TEST(Medium, SingleTransmitterReachesAllNeighbors) {
  const graph::Graph g = graph::star_graph(4);  // hub 0
  auto eng = scripted(g, {{0}, {}, {}, {}}, WakeSchedule::synchronous(4));
  eng.step();
  for (NodeId v = 1; v < 4; ++v) {
    ASSERT_EQ(eng.node(v).received.size(), 1u);
    EXPECT_EQ(eng.node(v).received[0].second.sender, 0u);
  }
  EXPECT_EQ(eng.stats().transmissions, 1u);
  EXPECT_EQ(eng.stats().deliveries, 3u);
  EXPECT_EQ(eng.stats().collisions, 0u);
}

TEST(Medium, TwoTransmittersCollideAtCommonNeighbor) {
  // Path 0-1-2: 0 and 2 transmit; 1 hears nothing (collision).
  const graph::Graph g = graph::path_graph(3);
  auto eng = scripted(g, {{0}, {}, {0}}, WakeSchedule::synchronous(3));
  eng.step();
  EXPECT_TRUE(eng.node(1).received.empty());
  EXPECT_EQ(eng.stats().collisions, 1u);
  EXPECT_EQ(eng.stats().deliveries, 0u);
}

TEST(Medium, HiddenTerminalDeliversToExclusiveNeighbors) {
  // Path 0-1-2-3-4: transmitters 1 and 3. Node 2 collides; nodes 0 and 4
  // each hear their only transmitting neighbor.
  const graph::Graph g = graph::path_graph(5);
  auto eng = scripted(g, {{}, {0}, {}, {0}, {}}, WakeSchedule::synchronous(5));
  eng.step();
  EXPECT_EQ(eng.node(0).received.size(), 1u);
  EXPECT_EQ(eng.node(0).received[0].second.sender, 1u);
  EXPECT_TRUE(eng.node(2).received.empty());
  EXPECT_EQ(eng.node(4).received.size(), 1u);
  EXPECT_EQ(eng.node(4).received[0].second.sender, 3u);
  EXPECT_EQ(eng.stats().collisions, 1u);
  EXPECT_EQ(eng.stats().deliveries, 2u);
}

TEST(Medium, TransmitterCannotReceive) {
  // Edge 0-1, both transmit in the same slot: neither receives.
  const graph::Graph g = graph::path_graph(2);
  auto eng = scripted(g, {{0}, {0}}, WakeSchedule::synchronous(2));
  eng.step();
  EXPECT_TRUE(eng.node(0).received.empty());
  EXPECT_TRUE(eng.node(1).received.empty());
  EXPECT_EQ(eng.stats().collisions, 0u);  // busy senders, not collisions
}

TEST(Medium, TransmitterMissesIncomingMessage) {
  // Path 0-1: 0 transmits in slot 0 and 1 transmits in slot 0 — covered
  // above. Here: 1 transmits in the same slot that 0 addresses it.
  const graph::Graph g = graph::path_graph(3);
  // Slot 0: node 0 and node 1 transmit. Node 1 busy → misses 0's message;
  // node 2 hears node 1.
  auto eng = scripted(g, {{0}, {0}, {}}, WakeSchedule::synchronous(3));
  eng.step();
  EXPECT_TRUE(eng.node(1).received.empty());
  ASSERT_EQ(eng.node(2).received.size(), 1u);
  EXPECT_EQ(eng.node(2).received[0].second.sender, 1u);
}

TEST(Medium, NonNeighborsCannotInterfere) {
  // Two disjoint edges: 0-1 and 2-3. 0 and 2 transmit simultaneously.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph::Graph g = b.build();
  auto eng = scripted(g, {{0}, {}, {0}, {}}, WakeSchedule::synchronous(4));
  eng.step();
  EXPECT_EQ(eng.node(1).received.size(), 1u);
  EXPECT_EQ(eng.node(3).received.size(), 1u);
  EXPECT_EQ(eng.stats().collisions, 0u);
}

TEST(Medium, SleepingNodesNeitherReceiveNorInterfere) {
  // Path 0-1: node 1 wakes at slot 5; node 0 transmits at slot 0 (missed)
  // and at slot 6 (heard).
  const graph::Graph g = graph::path_graph(2);
  auto eng = scripted(g, {{0, 6}, {}},
                      WakeSchedule(std::vector<Slot>{0, 5}));
  for (int i = 0; i < 8; ++i) eng.step();
  ASSERT_EQ(eng.node(1).received.size(), 1u);
  EXPECT_EQ(eng.node(1).received[0].first, 6);
  EXPECT_EQ(eng.node(1).wake_at, 5);
}

TEST(Medium, ThreeTransmittersStillCollide) {
  const graph::Graph g = graph::star_graph(4);
  auto eng =
      scripted(g, {{}, {0}, {0}, {0}}, WakeSchedule::synchronous(4));
  eng.step();
  EXPECT_TRUE(eng.node(0).received.empty());
  EXPECT_EQ(eng.stats().collisions, 1u);
}

TEST(Medium, MessagePayloadSurvivesDelivery) {
  const graph::Graph g = graph::path_graph(2);
  std::vector<ScriptNode> nodes(2);
  nodes[0].id = 0;
  nodes[1].id = 1;
  nodes[0].tx_slots = {3};
  auto eng = Engine<ScriptNode>(g, WakeSchedule::synchronous(2),
                                std::move(nodes), 1);
  for (int i = 0; i < 4; ++i) eng.step();
  ASSERT_EQ(eng.node(1).received.size(), 1u);
  const Message& m = eng.node(1).received[0].second;
  EXPECT_EQ(m.type, MsgType::kDecided);
  EXPECT_EQ(m.color_index, 3);  // ScriptNode encodes the slot here
}

// ------------------------------------------------------ decision timing ---

TEST(Engine, DecisionSlotAndLatencyTracked) {
  const graph::Graph g = graph::empty_graph(1);
  std::vector<ScriptNode> nodes(1);
  nodes[0].id = 0;
  auto eng = Engine<ScriptNode>(g, WakeSchedule(std::vector<Slot>{2}),
                                std::move(nodes), 1);
  eng.step();  // slot 0: asleep
  eng.step();  // slot 1: asleep
  eng.step();  // slot 2: awake, not decided
  EXPECT_EQ(eng.decision_slot(0), Engine<ScriptNode>::kUndecided);
  eng.node(0).done = true;
  eng.step();  // slot 3: decided
  EXPECT_EQ(eng.decision_slot(0), 3);
  EXPECT_EQ(eng.decision_latency(0), 1);
  EXPECT_TRUE(eng.all_decided());
}

TEST(Engine, RunStopsWhenAllDecided) {
  const graph::Graph g = graph::empty_graph(2);
  std::vector<ScriptNode> nodes(2);
  nodes[0].id = 0;
  nodes[1].id = 1;
  nodes[0].done = true;
  nodes[1].done = true;
  auto eng = Engine<ScriptNode>(g, WakeSchedule::synchronous(2),
                                std::move(nodes), 1);
  const RunStats stats = eng.run(1000);
  EXPECT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.slots_run, 1);
}

TEST(Engine, RunHitsSlotCapWhenUndecided) {
  const graph::Graph g = graph::empty_graph(1);
  std::vector<ScriptNode> nodes(1);
  nodes[0].id = 0;
  auto eng = Engine<ScriptNode>(g, WakeSchedule::synchronous(1),
                                std::move(nodes), 1);
  const RunStats stats = eng.run(25);
  EXPECT_FALSE(stats.all_decided);
  EXPECT_EQ(stats.slots_run, 25);
}

TEST(Engine, NotAllDecidedWhileSomeoneSleeps) {
  const graph::Graph g = graph::empty_graph(2);
  std::vector<ScriptNode> nodes(2);
  nodes[0].id = 0;
  nodes[1].id = 1;
  nodes[0].done = true;
  nodes[1].done = true;
  auto eng = Engine<ScriptNode>(g, WakeSchedule(std::vector<Slot>{0, 50}),
                                std::move(nodes), 1);
  eng.step();
  EXPECT_FALSE(eng.all_decided());  // node 1 still asleep
}

// -------------------------------------------------------- wake schedules --

TEST(Wakeup, SynchronousAllZero) {
  const auto ws = WakeSchedule::synchronous(5);
  EXPECT_EQ(ws.size(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(ws.wake_slot(v), 0);
  EXPECT_EQ(ws.latest(), 0);
}

TEST(Wakeup, UniformWithinWindow) {
  Rng rng(31);
  const auto ws = WakeSchedule::uniform(200, 100, rng);
  for (NodeId v = 0; v < 200; ++v) {
    EXPECT_GE(ws.wake_slot(v), 0);
    EXPECT_LE(ws.wake_slot(v), 100);
  }
}

TEST(Wakeup, SequentialHasAllMultiples) {
  Rng rng(32);
  const auto ws = WakeSchedule::sequential(10, 7, rng);
  std::vector<Slot> sorted = ws.slots();
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sorted[i], static_cast<Slot>(i) * 7);
  }
}

TEST(Wakeup, PoissonIsNonDecreasingAfterSort) {
  Rng rng(33);
  const auto ws = WakeSchedule::poisson(100, 10.0, rng);
  EXPECT_EQ(ws.size(), 100u);
  const double mean_latest = 100 * 10.0;
  EXPECT_GT(ws.latest(), static_cast<Slot>(mean_latest * 0.5));
  EXPECT_LT(ws.latest(), static_cast<Slot>(mean_latest * 2.0));
}

TEST(Wakeup, WavefrontFollowsXCoordinate) {
  Rng rng(34);
  const std::vector<geom::Vec2> pos = {{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}};
  const auto ws = WakeSchedule::wavefront(pos, 100.0, 0, rng);
  EXPECT_EQ(ws.wake_slot(0), 0);
  EXPECT_EQ(ws.wake_slot(1), 500);
  EXPECT_EQ(ws.wake_slot(2), 1000);
}

TEST(Wakeup, StagedUsesBurstSlots) {
  Rng rng(35);
  const auto ws = WakeSchedule::staged(300, 4, 1000, rng);
  for (NodeId v = 0; v < 300; ++v) {
    EXPECT_EQ(ws.wake_slot(v) % 1000, 0);
    EXPECT_LE(ws.wake_slot(v), 3000);
  }
}

TEST(Wakeup, NegativeSlotRejected) {
  EXPECT_THROW(WakeSchedule(std::vector<Slot>{0, -1}), CheckError);
}

}  // namespace
}  // namespace urn::radio
