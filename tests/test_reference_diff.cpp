// Differential tests: the optimized epoch-stamped engine must agree
// bit-for-bit with the naive reference implementation of the same medium
// semantics, for the real protocol and across graph families, schedules
// and seeds.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "reference_engine.hpp"
#include "support/rng.hpp"

namespace urn {
namespace {

using Case = std::tuple<std::string, std::uint64_t>;

graph::Graph make_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "udg") return graph::random_udg(70, 6.0, 1.4, rng).graph;
  if (family == "gnp") return graph::gnp(60, 0.08, rng);
  if (family == "star") return graph::star_graph(40);
  if (family == "cycle") return graph::cycle_graph(50);
  URN_CHECK(false);
  return {};
}

class EngineDiff : public ::testing::TestWithParam<Case> {};

TEST_P(EngineDiff, OptimizedEngineMatchesReference) {
  const auto& [family, seed] = GetParam();
  const graph::Graph g = make_graph(family, seed);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(g.num_nodes(), delta, 5, 12);

  Rng wrng(mix_seed(seed, 77));
  const auto schedule =
      radio::WakeSchedule::uniform(g.num_nodes(), 500, wrng);

  std::vector<core::ColoringNode> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    a_nodes.emplace_back(&params, v);
    b_nodes.emplace_back(&params, v);
  }
  radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                         seed);
  testing::ReferenceEngine<core::ColoringNode> ref(g, schedule,
                                                   std::move(b_nodes), seed);

  const radio::Slot horizon = 4 * params.threshold() + 2000;
  for (radio::Slot t = 0; t < horizon; ++t) {
    fast.step();
    ref.step();
  }

  EXPECT_EQ(fast.stats().transmissions, ref.transmissions());
  EXPECT_EQ(fast.stats().deliveries, ref.deliveries());
  EXPECT_EQ(fast.stats().collisions, ref.collisions());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fast.decision_slot(v), ref.decision_slot(v)) << "node " << v;
    EXPECT_EQ(fast.node(v).phase(), ref.node(v).phase()) << "node " << v;
    EXPECT_EQ(fast.node(v).color(), ref.node(v).color()) << "node " << v;
    EXPECT_EQ(fast.node(v).counter(), ref.node(v).counter()) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, EngineDiff,
    ::testing::Values(Case{"udg", 1}, Case{"udg", 2}, Case{"gnp", 3},
                      Case{"gnp", 4}, Case{"star", 5}, Case{"cycle", 6}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---- fuzz grid: drop, deactivate, wake gaps -------------------------------

void expect_stats_equal(const radio::RunStats& fast,
                        const radio::RunStats& ref) {
  EXPECT_EQ(fast.slots_run, ref.slots_run);
  EXPECT_EQ(fast.transmissions, ref.transmissions);
  EXPECT_EQ(fast.deliveries, ref.deliveries);
  EXPECT_EQ(fast.collisions, ref.collisions);
  EXPECT_EQ(fast.dropped, ref.dropped);
  EXPECT_EQ(fast.all_decided, ref.all_decided);
}

template <typename Fast, typename Ref>
void expect_nodes_equal(const graph::Graph& g, const Fast& fast,
                        const Ref& ref) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fast.decision_slot(v), ref.decision_slot(v)) << "node " << v;
    EXPECT_EQ(fast.node(v).phase(), ref.node(v).phase()) << "node " << v;
    EXPECT_EQ(fast.node(v).color(), ref.node(v).color()) << "node " << v;
    EXPECT_EQ(fast.node(v).counter(), ref.node(v).counter()) << "node " << v;
  }
}

using DropCase = std::tuple<std::string, std::uint64_t, double>;

class EngineDiffDrop : public ::testing::TestWithParam<DropCase> {};

// drop_probability > 0 makes the medium RNG draw once per clean
// reception, in the engine's documented listener order — any ordering
// bug in the single-pass medium desynchronizes the stream and cascades
// into every later delivery.
TEST_P(EngineDiffDrop, LossyMediumMatchesReferenceDrawForDraw) {
  const auto& [family, seed, drop] = GetParam();
  const graph::Graph g = make_graph(family, seed);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(g.num_nodes(), delta, 5, 12);
  const radio::MediumOptions medium{drop};

  Rng wrng(mix_seed(seed, 78));
  const auto schedule =
      radio::WakeSchedule::uniform(g.num_nodes(), 400, wrng);

  std::vector<core::ColoringNode> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    a_nodes.emplace_back(&params, v);
    b_nodes.emplace_back(&params, v);
  }
  radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                         seed, medium);
  testing::ReferenceEngine<core::ColoringNode> ref(
      g, schedule, std::move(b_nodes), seed, medium);

  const radio::Slot horizon = 3 * params.threshold() + 1500;
  for (radio::Slot t = 0; t < horizon; ++t) {
    fast.step();
    ref.step();
    if ((t & 511) == 0) EXPECT_EQ(fast.all_decided(), ref.all_decided());
  }
  expect_stats_equal(fast.stats(), ref.stats());
  EXPECT_GT(fast.stats().dropped, 0u);  // the lossy path actually ran
  expect_nodes_equal(g, fast, ref);
}

INSTANTIATE_TEST_SUITE_P(
    DropGrid, EngineDiffDrop,
    ::testing::Values(DropCase{"udg", 21, 0.15}, DropCase{"udg", 22, 0.35},
                      DropCase{"gnp", 23, 0.15}, DropCase{"star", 24, 0.25},
                      DropCase{"cycle", 25, 0.35}),
    [](const ::testing::TestParamInfo<DropCase>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_d" +
             std::to_string(
                 static_cast<int>(std::get<2>(param_info.param) * 100));
    });

// Mid-run crash-stop injection: the same deactivation script (including
// double-deactivations, which must be idempotent) runs against both
// engines under a lossy medium, exercising the compaction of dead nodes
// out of the optimized engine's live lists.
TEST(EngineDiffDeactivate, MidRunCrashesMatchReference) {
  for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
    const graph::Graph g = make_graph("udg", seed);
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params =
        core::Params::practical(g.num_nodes(), delta, 5, 12);
    const radio::MediumOptions medium{0.2};

    Rng wrng(mix_seed(seed, 79));
    const auto schedule =
        radio::WakeSchedule::uniform(g.num_nodes(), 600, wrng);

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                           seed, medium);
    testing::ReferenceEngine<core::ColoringNode> ref(
        g, schedule, std::move(b_nodes), seed, medium);

    const radio::Slot horizon = 3 * params.threshold() + 1500;
    Rng crash_rng(mix_seed(seed, 80));
    for (radio::Slot t = 0; t < horizon; ++t) {
      if (t % 701 == 350) {
        // Crash a pseudo-random node; every third time, re-kill an
        // already-dead one to pin idempotence.
        const auto victim = static_cast<graph::NodeId>(
            crash_rng.below(g.num_nodes()));
        fast.deactivate(victim);
        ref.deactivate(victim);
        if (t % 3 == 0) {
          fast.deactivate(victim);
          ref.deactivate(victim);
        }
        EXPECT_TRUE(fast.is_dead(victim));
      }
      fast.step();
      ref.step();
      if ((t & 255) == 0) EXPECT_EQ(fast.all_decided(), ref.all_decided());
    }
    expect_stats_equal(fast.stats(), ref.stats());
    expect_nodes_equal(g, fast, ref);
  }
}

// Adversarial wake schedules with long empty gaps, driven through run():
// the optimized engine fast-forwards across the gaps while the reference
// grinds slot by slot — RunStats must still agree field for field.
TEST(EngineDiffGaps, FastForwardAcrossWakeGapsIsUnobservable) {
  for (const std::uint64_t seed : {41ull, 42ull}) {
    const graph::Graph g = make_graph("udg", seed);
    const std::size_t n = g.num_nodes();
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params = core::Params::practical(n, delta, 5, 12);
    const radio::MediumOptions medium{0.1};

    // Three wake waves separated by multi-thousand-slot silence, after a
    // long initial gap: nodes 0..n/3 at 4000, ..2n/3 at 9000, rest 15000.
    std::vector<radio::Slot> wakes(n);
    for (std::size_t v = 0; v < n; ++v) {
      wakes[v] = v < n / 3 ? 4000 : (v < 2 * n / 3 ? 9000 : 15000);
    }
    const radio::WakeSchedule schedule{std::vector<radio::Slot>(wakes)};

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < n; ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                           seed, medium);
    testing::ReferenceEngine<core::ColoringNode> ref(
        g, schedule, std::move(b_nodes), seed, medium);

    const radio::Slot budget = 15000 + 4 * params.threshold() + 2000;
    const radio::RunStats fast_stats = fast.run(budget);
    const radio::RunStats ref_stats = ref.run(budget);
    expect_stats_equal(fast_stats, ref_stats);
    expect_nodes_equal(g, fast, ref);
    EXPECT_EQ(fast.all_decided(), ref.all_decided());
  }
}

// run() must also agree when nothing ever wakes late — plain grid, whole
// runs, RunStats field for field (the original grid only compared three
// counters after a fixed horizon of manual steps).
TEST(EngineDiffRun, WholeRunStatsMatchFieldForField) {
  for (const std::uint64_t seed : {51ull, 52ull}) {
    const graph::Graph g = make_graph("gnp", seed);
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params =
        core::Params::practical(g.num_nodes(), delta, 5, 12);

    Rng wrng(mix_seed(seed, 81));
    const auto schedule =
        radio::WakeSchedule::uniform(g.num_nodes(), 300, wrng);

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                           seed);
    testing::ReferenceEngine<core::ColoringNode> ref(
        g, schedule, std::move(b_nodes), seed);

    const radio::Slot budget = 6 * params.threshold() + 4000;
    expect_stats_equal(fast.run(budget), ref.run(budget));
    expect_nodes_equal(g, fast, ref);
  }
}

}  // namespace
}  // namespace urn
