// Differential tests: the optimized epoch-stamped engine must agree
// bit-for-bit with the naive reference implementation of the same medium
// semantics, for the real protocol and across graph families, schedules
// and seeds.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "reference_engine.hpp"
#include "support/rng.hpp"

namespace urn {
namespace {

using Case = std::tuple<std::string, std::uint64_t>;

graph::Graph make_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "udg") return graph::random_udg(70, 6.0, 1.4, rng).graph;
  if (family == "gnp") return graph::gnp(60, 0.08, rng);
  if (family == "star") return graph::star_graph(40);
  if (family == "cycle") return graph::cycle_graph(50);
  URN_CHECK(false);
  return {};
}

class EngineDiff : public ::testing::TestWithParam<Case> {};

TEST_P(EngineDiff, OptimizedEngineMatchesReference) {
  const auto& [family, seed] = GetParam();
  const graph::Graph g = make_graph(family, seed);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(g.num_nodes(), delta, 5, 12);

  Rng wrng(mix_seed(seed, 77));
  const auto schedule =
      radio::WakeSchedule::uniform(g.num_nodes(), 500, wrng);

  std::vector<core::ColoringNode> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    a_nodes.emplace_back(&params, v);
    b_nodes.emplace_back(&params, v);
  }
  radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                         seed);
  testing::ReferenceEngine<core::ColoringNode> ref(g, schedule,
                                                   std::move(b_nodes), seed);

  const radio::Slot horizon = 4 * params.threshold() + 2000;
  for (radio::Slot t = 0; t < horizon; ++t) {
    fast.step();
    ref.step();
  }

  EXPECT_EQ(fast.stats().transmissions, ref.transmissions());
  EXPECT_EQ(fast.stats().deliveries, ref.deliveries());
  EXPECT_EQ(fast.stats().collisions, ref.collisions());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fast.decision_slot(v), ref.decision_slot(v)) << "node " << v;
    EXPECT_EQ(fast.node(v).phase(), ref.node(v).phase()) << "node " << v;
    EXPECT_EQ(fast.node(v).color(), ref.node(v).color()) << "node " << v;
    EXPECT_EQ(fast.node(v).counter(), ref.node(v).counter()) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, EngineDiff,
    ::testing::Values(Case{"udg", 1}, Case{"udg", 2}, Case{"gnp", 3},
                      Case{"gnp", 4}, Case{"star", 5}, Case{"cycle", 6}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace urn
