// Differential tests: the optimized epoch-stamped engine must agree
// bit-for-bit with the naive reference implementation of the same medium
// semantics, for the real protocol and across graph families, schedules
// and seeds.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/generators.hpp"
#include "obs/postmortem.hpp"
#include "radio/engine.hpp"
#include "radio/misaligned_engine.hpp"
#include "reference_engine.hpp"
#include "support/rng.hpp"

namespace urn {
namespace {

using Case = std::tuple<std::string, std::uint64_t>;

graph::Graph make_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "udg") return graph::random_udg(70, 6.0, 1.4, rng).graph;
  if (family == "gnp") return graph::gnp(60, 0.08, rng);
  if (family == "star") return graph::star_graph(40);
  if (family == "cycle") return graph::cycle_graph(50);
  URN_CHECK(false);
  return {};
}

class EngineDiff : public ::testing::TestWithParam<Case> {};

TEST_P(EngineDiff, OptimizedEngineMatchesReference) {
  const auto& [family, seed] = GetParam();
  const graph::Graph g = make_graph(family, seed);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(g.num_nodes(), delta, 5, 12);

  Rng wrng(mix_seed(seed, 77));
  const auto schedule =
      radio::WakeSchedule::uniform(g.num_nodes(), 500, wrng);

  std::vector<core::ColoringNode> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    a_nodes.emplace_back(&params, v);
    b_nodes.emplace_back(&params, v);
  }
  radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                         seed);
  testing::ReferenceEngine<core::ColoringNode> ref(g, schedule,
                                                   std::move(b_nodes), seed);

  const radio::Slot horizon = 4 * params.threshold() + 2000;
  for (radio::Slot t = 0; t < horizon; ++t) {
    fast.step();
    ref.step();
  }

  EXPECT_EQ(fast.stats().transmissions, ref.transmissions());
  EXPECT_EQ(fast.stats().deliveries, ref.deliveries());
  EXPECT_EQ(fast.stats().collisions, ref.collisions());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fast.decision_slot(v), ref.decision_slot(v)) << "node " << v;
    EXPECT_EQ(fast.node(v).phase(), ref.node(v).phase()) << "node " << v;
    EXPECT_EQ(fast.node(v).color(), ref.node(v).color()) << "node " << v;
    EXPECT_EQ(fast.node(v).counter(), ref.node(v).counter()) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, EngineDiff,
    ::testing::Values(Case{"udg", 1}, Case{"udg", 2}, Case{"gnp", 3},
                      Case{"gnp", 4}, Case{"star", 5}, Case{"cycle", 6}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---- fuzz grid: drop, deactivate, wake gaps -------------------------------

void expect_stats_equal(const radio::RunStats& fast,
                        const radio::RunStats& ref) {
  EXPECT_EQ(fast.slots_run, ref.slots_run);
  EXPECT_EQ(fast.transmissions, ref.transmissions);
  EXPECT_EQ(fast.deliveries, ref.deliveries);
  EXPECT_EQ(fast.collisions, ref.collisions);
  EXPECT_EQ(fast.dropped, ref.dropped);
  EXPECT_EQ(fast.all_decided, ref.all_decided);
}

template <typename Fast, typename Ref>
void expect_nodes_equal(const graph::Graph& g, const Fast& fast,
                        const Ref& ref) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(fast.decision_slot(v), ref.decision_slot(v)) << "node " << v;
    EXPECT_EQ(fast.node(v).phase(), ref.node(v).phase()) << "node " << v;
    EXPECT_EQ(fast.node(v).color(), ref.node(v).color()) << "node " << v;
    EXPECT_EQ(fast.node(v).counter(), ref.node(v).counter()) << "node " << v;
  }
}

using DropCase = std::tuple<std::string, std::uint64_t, double>;

class EngineDiffDrop : public ::testing::TestWithParam<DropCase> {};

// drop_probability > 0 makes the medium RNG draw once per clean
// reception, in the engine's documented listener order — any ordering
// bug in the single-pass medium desynchronizes the stream and cascades
// into every later delivery.
TEST_P(EngineDiffDrop, LossyMediumMatchesReferenceDrawForDraw) {
  const auto& [family, seed, drop] = GetParam();
  const graph::Graph g = make_graph(family, seed);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(g.num_nodes(), delta, 5, 12);
  const radio::MediumOptions medium{drop};

  Rng wrng(mix_seed(seed, 78));
  const auto schedule =
      radio::WakeSchedule::uniform(g.num_nodes(), 400, wrng);

  std::vector<core::ColoringNode> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    a_nodes.emplace_back(&params, v);
    b_nodes.emplace_back(&params, v);
  }
  radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                         seed, medium);
  testing::ReferenceEngine<core::ColoringNode> ref(
      g, schedule, std::move(b_nodes), seed, medium);

  const radio::Slot horizon = 3 * params.threshold() + 1500;
  for (radio::Slot t = 0; t < horizon; ++t) {
    fast.step();
    ref.step();
    if ((t & 511) == 0) EXPECT_EQ(fast.all_decided(), ref.all_decided());
  }
  expect_stats_equal(fast.stats(), ref.stats());
  EXPECT_GT(fast.stats().dropped, 0u);  // the lossy path actually ran
  expect_nodes_equal(g, fast, ref);
}

INSTANTIATE_TEST_SUITE_P(
    DropGrid, EngineDiffDrop,
    ::testing::Values(DropCase{"udg", 21, 0.15}, DropCase{"udg", 22, 0.35},
                      DropCase{"gnp", 23, 0.15}, DropCase{"star", 24, 0.25},
                      DropCase{"cycle", 25, 0.35}),
    [](const ::testing::TestParamInfo<DropCase>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_d" +
             std::to_string(
                 static_cast<int>(std::get<2>(param_info.param) * 100));
    });

// Mid-run crash-stop injection: the same deactivation script (including
// double-deactivations, which must be idempotent) runs against both
// engines under a lossy medium, exercising the compaction of dead nodes
// out of the optimized engine's live lists.
TEST(EngineDiffDeactivate, MidRunCrashesMatchReference) {
  for (const std::uint64_t seed : {31ull, 32ull, 33ull}) {
    const graph::Graph g = make_graph("udg", seed);
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params =
        core::Params::practical(g.num_nodes(), delta, 5, 12);
    const radio::MediumOptions medium{0.2};

    Rng wrng(mix_seed(seed, 79));
    const auto schedule =
        radio::WakeSchedule::uniform(g.num_nodes(), 600, wrng);

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                           seed, medium);
    testing::ReferenceEngine<core::ColoringNode> ref(
        g, schedule, std::move(b_nodes), seed, medium);

    const radio::Slot horizon = 3 * params.threshold() + 1500;
    Rng crash_rng(mix_seed(seed, 80));
    for (radio::Slot t = 0; t < horizon; ++t) {
      if (t % 701 == 350) {
        // Crash a pseudo-random node; every third time, re-kill an
        // already-dead one to pin idempotence.
        const auto victim = static_cast<graph::NodeId>(
            crash_rng.below(g.num_nodes()));
        fast.deactivate(victim);
        ref.deactivate(victim);
        if (t % 3 == 0) {
          fast.deactivate(victim);
          ref.deactivate(victim);
        }
        EXPECT_TRUE(fast.is_dead(victim));
      }
      fast.step();
      ref.step();
      if ((t & 255) == 0) EXPECT_EQ(fast.all_decided(), ref.all_decided());
    }
    expect_stats_equal(fast.stats(), ref.stats());
    expect_nodes_equal(g, fast, ref);
  }
}

// Adversarial wake schedules with long empty gaps, driven through run():
// the optimized engine fast-forwards across the gaps while the reference
// grinds slot by slot — RunStats must still agree field for field.
TEST(EngineDiffGaps, FastForwardAcrossWakeGapsIsUnobservable) {
  for (const std::uint64_t seed : {41ull, 42ull}) {
    const graph::Graph g = make_graph("udg", seed);
    const std::size_t n = g.num_nodes();
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params = core::Params::practical(n, delta, 5, 12);
    const radio::MediumOptions medium{0.1};

    // Three wake waves separated by multi-thousand-slot silence, after a
    // long initial gap: nodes 0..n/3 at 4000, ..2n/3 at 9000, rest 15000.
    std::vector<radio::Slot> wakes(n);
    for (std::size_t v = 0; v < n; ++v) {
      wakes[v] = v < n / 3 ? 4000 : (v < 2 * n / 3 ? 9000 : 15000);
    }
    const radio::WakeSchedule schedule{std::vector<radio::Slot>(wakes)};

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < n; ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                           seed, medium);
    testing::ReferenceEngine<core::ColoringNode> ref(
        g, schedule, std::move(b_nodes), seed, medium);

    const radio::Slot budget = 15000 + 4 * params.threshold() + 2000;
    const radio::RunStats fast_stats = fast.run(budget);
    const radio::RunStats ref_stats = ref.run(budget);
    expect_stats_equal(fast_stats, ref_stats);
    expect_nodes_equal(g, fast, ref);
    EXPECT_EQ(fast.all_decided(), ref.all_decided());
  }
}

// run() must also agree when nothing ever wakes late — plain grid, whole
// runs, RunStats field for field (the original grid only compared three
// counters after a fixed horizon of manual steps).
TEST(EngineDiffRun, WholeRunStatsMatchFieldForField) {
  for (const std::uint64_t seed : {51ull, 52ull}) {
    const graph::Graph g = make_graph("gnp", seed);
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params =
        core::Params::practical(g.num_nodes(), delta, 5, 12);

    Rng wrng(mix_seed(seed, 81));
    const auto schedule =
        radio::WakeSchedule::uniform(g.num_nodes(), 300, wrng);

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> fast(g, schedule, std::move(a_nodes),
                                           seed);
    testing::ReferenceEngine<core::ColoringNode> ref(
        g, schedule, std::move(b_nodes), seed);

    const radio::Slot budget = 6 * params.threshold() + 4000;
    expect_stats_equal(fast.run(budget), ref.run(budget));
    expect_nodes_equal(g, fast, ref);
  }
}

// A traced engine instantiation (any enabled sink) keeps the scalar
// per-node `on_slot` loop — per-node contexts carry the event hook —
// while the untraced instantiation runs `ColoringNode::batch_slots`.
// The protocol's contract says the two are bit-identical; this pins it
// end to end across families and lossy media: same stats, same per-node
// state, and the same `save_state` byte blob (which serializes every
// hot-block array, competitor list, and RNG stream).
TEST(EngineDiffBatch, TracedScalarLoopMatchesUntracedBatchLoop) {
  using TracedCase = std::tuple<std::string, std::uint64_t, double>;
  for (const auto& [family, seed, drop] :
       {TracedCase{"udg", 81, 0.0}, TracedCase{"gnp", 82, 0.2},
        TracedCase{"star", 83, 0.0}, TracedCase{"cycle", 84, 0.3}}) {
    const graph::Graph g = make_graph(family, seed);
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params =
        core::Params::practical(g.num_nodes(), delta, 5, 12);
    radio::MediumOptions medium;
    medium.drop_probability = drop;

    Rng wrng(mix_seed(seed, 91));
    const auto schedule =
        radio::WakeSchedule::uniform(g.num_nodes(), 400, wrng);

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::Engine<core::ColoringNode> batch(g, schedule, std::move(a_nodes),
                                            seed, medium);
    obs::RingSink ring(1 << 10);
    radio::Engine<core::ColoringNode, obs::RingSink> scalar(
        g, schedule, std::move(b_nodes), seed, medium, &ring);

    const radio::Slot budget = 4 * params.threshold() + 2000;
    expect_stats_equal(batch.run(budget), scalar.run(budget));
    expect_nodes_equal(g, batch, scalar);

    obs::postmortem::Writer blob_batch, blob_scalar;
    batch.save_state(blob_batch);
    scalar.save_state(blob_scalar);
    EXPECT_EQ(blob_batch.data(), blob_scalar.data()) << family << seed;
  }
}

// ---- checkpoint → resume fuzz grid (postmortem) ---------------------------
//
// The postmortem contract: serializing an engine mid-run and resuming
// from the checkpoint is unobservable — the resumed run replays the
// exact RNG draw sequence, lands on the same RunStats field for field,
// the same per-node final state, and the same serialized end-state
// bytes as the uninterrupted run.  The grid sweeps both engines across
// the scenarios that stress different checkpointed state: mid-waking
// snapshots (sleepers still pending), lossy media (medium RNG stream
// mid-sequence), post-deactivate snapshots (dead bits and live-list
// compaction), and multi-wave gap schedules (fast-forward cursors).

namespace pm = obs::postmortem;

void expect_resume_equals_straight(const core::RunResult& resumed,
                                   const core::RunResult& straight) {
  expect_stats_equal(resumed.medium, straight.medium);
  EXPECT_EQ(resumed.colors, straight.colors);
  EXPECT_EQ(resumed.wake_slot, straight.wake_slot);
  EXPECT_EQ(resumed.decision_slot, straight.decision_slot);
  EXPECT_EQ(resumed.latency, straight.latency);
  EXPECT_EQ(resumed.leader_of, straight.leader_of);
  EXPECT_EQ(resumed.intra_cluster, straight.intra_cluster);
  EXPECT_EQ(resumed.num_leaders, straight.num_leaders);
  EXPECT_EQ(resumed.total_resets, straight.total_resets);
  EXPECT_EQ(resumed.max_verify_states, straight.max_verify_states);
  EXPECT_EQ(resumed.duplicate_serves, straight.duplicate_serves);
  EXPECT_EQ(resumed.max_color, straight.max_color);
  EXPECT_EQ(resumed.check.valid(), straight.check.valid());
  EXPECT_EQ(resumed.all_decided, straight.all_decided);
}

/// One aligned-engine checkpoint→resume round: engine `a` runs straight
/// through, twin `b` snapshots at `take_at` (after replaying `kills`,
/// which must all land before the snapshot) and continues; the
/// checkpoint is then loaded and resumed.  All three must agree on
/// stats, per-node state, and the final `save_state` byte blob.
void check_aligned_resume(
    const graph::Graph& g, const core::Params& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed,
    radio::MediumOptions medium, radio::Slot take_at, radio::Slot budget,
    const std::string& tag,
    const std::vector<std::pair<radio::Slot, graph::NodeId>>& kills = {}) {
  std::vector<core::ColoringNode> a_nodes, b_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    a_nodes.emplace_back(&params, v);
    b_nodes.emplace_back(&params, v);
  }
  radio::Engine<core::ColoringNode> a(g, schedule, std::move(a_nodes), seed,
                                      medium);
  radio::Engine<core::ColoringNode> b(g, schedule, std::move(b_nodes), seed,
                                      medium);

  const std::string path = ::testing::TempDir() + "refdiff_" + tag + ".urnc";
  pm::Checkpointer ckpt(
      path, pm::EngineKind::kAligned, 0,
      core::render_scenario(
          core::make_scenario(g, params, schedule, seed, budget, medium)));

  std::size_t next_kill = 0;
  radio::Slot t = 0;
  for (; t < take_at && !a.all_decided(); ++t) {
    a.step();
    b.step();
    while (next_kill < kills.size() && kills[next_kill].first == t) {
      a.deactivate(kills[next_kill].second);
      b.deactivate(kills[next_kill].second);
      ++next_kill;
    }
  }
  ASSERT_EQ(next_kill, kills.size()) << "kill script outlived the snapshot";
  ckpt.take(b, t);
  ASSERT_FALSE(ckpt.failed());

  const radio::RunStats stats_a = a.run(budget);
  const radio::RunStats stats_b = b.run(budget);
  expect_stats_equal(stats_b, stats_a);  // snapshotting perturbed nothing
  expect_nodes_equal(g, b, a);

  pm::Writer blob_a, blob_b;
  a.save_state(blob_a);
  b.save_state(blob_b);
  EXPECT_EQ(blob_a.data(), blob_b.data());

  const core::LoadedCheckpoint lc = core::load_checkpoint(path);
  ASSERT_TRUE(lc.ok) << lc.error;
  ASSERT_EQ(lc.position, t);
  const core::ResumeResult resumed = core::resume_coloring(lc);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  expect_resume_equals_straight(
      resumed.run, core::harvest_coloring(a, g, schedule, stats_a));

  // Final-state byte equality: rebuild from the checkpoint by hand, run
  // to the recorded budget, and the end state must serialize to the
  // straight run's exact bytes.
  std::vector<core::ColoringNode> c_nodes;
  for (graph::NodeId v = 0; v < lc.graph.num_nodes(); ++v) {
    c_nodes.emplace_back(&lc.scenario.params, v);
  }
  radio::WakeSchedule rsched{std::vector<radio::Slot>(lc.scenario.wake_slots)};
  radio::Engine<core::ColoringNode> c(lc.graph, rsched, std::move(c_nodes),
                                      lc.scenario.seed, lc.scenario.medium);
  pm::Reader state(lc.engine_state);
  ASSERT_TRUE(c.load_state(state));
  (void)c.run(lc.scenario.max_slots);
  pm::Writer blob_c;
  c.save_state(blob_c);
  EXPECT_EQ(blob_c.data(), blob_a.data());
}

using ResumeCase =
    std::tuple<std::string, std::uint64_t, double, bool /*gap schedule*/>;

class CheckpointResumeAligned : public ::testing::TestWithParam<ResumeCase> {
};

TEST_P(CheckpointResumeAligned, ResumeIsBitIdenticalToStraightRun) {
  const auto& [family, seed, drop, gaps] = GetParam();
  const graph::Graph g = make_graph(family, seed);
  const std::size_t n = g.num_nodes();
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params = core::Params::practical(n, delta, 5, 12);
  radio::MediumOptions medium;
  medium.drop_probability = drop;

  radio::WakeSchedule schedule = [&] {
    if (gaps) {
      // Three wake waves with multi-thousand-slot silence between them
      // (the fast-forward path); the snapshot below lands inside the
      // silence after wave two, with wave three still asleep.
      std::vector<radio::Slot> wakes(n);
      for (std::size_t v = 0; v < n; ++v) {
        wakes[v] = v < n / 3 ? 4000 : (v < 2 * n / 3 ? 9000 : 15000);
      }
      return radio::WakeSchedule{std::move(wakes)};
    }
    Rng wrng(mix_seed(seed, 77));
    return radio::WakeSchedule::uniform(n, 1000, wrng);
  }();

  // Mid-waking snapshot: halfway into the wake window, so part of the
  // network is still asleep inside the checkpoint.
  const radio::Slot take_at = gaps ? 9500 : 500;
  const radio::Slot budget =
      (gaps ? 15000 : 1000) + 4 * params.threshold() + 2000;
  check_aligned_resume(g, params, schedule, seed, medium, take_at, budget,
                       family + "_s" + std::to_string(seed) +
                           (gaps ? "_gaps" : "") + "_d" +
                           std::to_string(static_cast<int>(drop * 100)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CheckpointResumeAligned,
    ::testing::Values(ResumeCase{"udg", 61, 0.0, false},
                      ResumeCase{"gnp", 62, 0.25, false},
                      ResumeCase{"star", 63, 0.15, false},
                      ResumeCase{"udg", 64, 0.1, true},
                      ResumeCase{"cycle", 65, 0.35, true},
                      // SoA-era additions: the hot block (klass bytes,
                      // counters, passive countdowns) and the parallel
                      // competitor arrays travel through the v1 blob as
                      // derived per-node fields — more seeds and both
                      // schedule shapes fuzz that round-trip.
                      ResumeCase{"udg", 66, 0.3, false},
                      ResumeCase{"gnp", 67, 0.0, true},
                      ResumeCase{"star", 68, 0.05, true}),
    [](const ::testing::TestParamInfo<ResumeCase>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param)) +
             (std::get<3>(param_info.param) ? "_gaps" : "") + "_d" +
             std::to_string(
                 static_cast<int>(std::get<2>(param_info.param) * 100));
    });

// Post-deactivate snapshot: crash-stop a few nodes before the
// checkpoint, so the dead bits, compacted live lists, and adjusted
// pending counts all travel through serialization.
TEST(CheckpointResumeAligned, PostDeactivateStateSurvivesRoundTrip) {
  for (const std::uint64_t seed : {71ull, 72ull}) {
    const graph::Graph g = make_graph("udg", seed);
    const std::size_t n = g.num_nodes();
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params = core::Params::practical(n, delta, 5, 12);
    radio::MediumOptions medium;
    medium.drop_probability = 0.2;
    Rng wrng(mix_seed(seed, 77));
    const auto schedule = radio::WakeSchedule::uniform(n, 600, wrng);

    // Same kill cadence as EngineDiffDeactivate, confined to the
    // pre-snapshot window so the resumed run needs no replay script.
    Rng crash_rng(mix_seed(seed, 80));
    std::vector<std::pair<radio::Slot, graph::NodeId>> kills;
    const radio::Slot take_at = 2000;
    for (radio::Slot t = 0; t < take_at; ++t) {
      if (t % 701 == 350) {
        kills.emplace_back(t,
                           static_cast<graph::NodeId>(crash_rng.below(n)));
      }
    }
    const radio::Slot budget = 4 * params.threshold() + 4000;
    check_aligned_resume(g, params, schedule, seed, medium, take_at, budget,
                         "deact_s" + std::to_string(seed), kills);
  }
}

// Misaligned engine: positions are half-slots, and the checkpoint must
// carry the cross-half state (in-flight transmissions, per-parity
// neighbor counts and stamps).  Snapshot at an odd half boundary so a
// transmission spanning the boundary is live inside the checkpoint.
TEST(CheckpointResumeMisaligned, ResumeIsBitIdenticalToStraightRun) {
  for (const std::uint64_t seed : {81ull, 82ull}) {
    const graph::Graph g = make_graph("gnp", seed);
    const std::size_t n = g.num_nodes();
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params = core::Params::practical(n, delta, 5, 12);
    Rng wrng(mix_seed(seed, 77));
    const auto schedule = radio::WakeSchedule::uniform(n, 800, wrng);
    Rng orng(mix_seed(seed, 5));
    const auto offsets =
        radio::MisalignedEngine<core::ColoringNode>::random_offsets(n, orng);

    std::vector<core::ColoringNode> a_nodes, b_nodes;
    for (graph::NodeId v = 0; v < n; ++v) {
      a_nodes.emplace_back(&params, v);
      b_nodes.emplace_back(&params, v);
    }
    radio::MisalignedEngine<core::ColoringNode> a(g, schedule, a_nodes,
                                                  offsets, seed);
    radio::MisalignedEngine<core::ColoringNode> b(g, schedule, b_nodes,
                                                  offsets, seed);

    const radio::Slot budget = 4 * params.threshold() + 2000;
    const std::string path = ::testing::TempDir() + "refdiff_mis_s" +
                             std::to_string(seed) + ".urnc";
    pm::Checkpointer ckpt(
        path, pm::EngineKind::kMisaligned, 0,
        core::render_scenario(core::make_scenario(
            g, params, schedule, seed, budget, {}, 0,
            std::vector<std::uint8_t>(offsets))));

    std::int64_t h = 0;
    const std::int64_t take_at_half = 2 * 400 + 1;  // mid-waking, odd half
    for (; h < take_at_half && !a.all_decided(); ++h) {
      a.step_half();
      b.step_half();
    }
    ckpt.take(b, h);
    ASSERT_FALSE(ckpt.failed());

    const radio::RunStats stats_a = a.run(budget);
    const radio::RunStats stats_b = b.run(budget);
    expect_stats_equal(stats_b, stats_a);
    expect_nodes_equal(g, b, a);

    pm::Writer blob_a, blob_b;
    a.save_state(blob_a);
    b.save_state(blob_b);
    EXPECT_EQ(blob_a.data(), blob_b.data());

    const core::LoadedCheckpoint lc = core::load_checkpoint(path);
    ASSERT_TRUE(lc.ok) << lc.error;
    ASSERT_EQ(lc.kind, pm::EngineKind::kMisaligned);
    ASSERT_EQ(lc.position, h);
    const core::ResumeResult resumed = core::resume_coloring(lc);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    expect_resume_equals_straight(
        resumed.run, core::harvest_coloring(a, g, schedule, stats_a));

    std::vector<core::ColoringNode> c_nodes;
    for (graph::NodeId v = 0; v < n; ++v) {
      c_nodes.emplace_back(&lc.scenario.params, v);
    }
    radio::WakeSchedule rsched{
        std::vector<radio::Slot>(lc.scenario.wake_slots)};
    radio::MisalignedEngine<core::ColoringNode> c(
        lc.graph, rsched, std::move(c_nodes), lc.scenario.offsets,
        lc.scenario.seed);
    pm::Reader state(lc.engine_state);
    ASSERT_TRUE(c.load_state(state));
    (void)c.run(lc.scenario.max_slots);
    pm::Writer blob_c;
    c.save_state(blob_c);
    EXPECT_EQ(blob_c.data(), blob_a.data());
  }
}

}  // namespace
}  // namespace urn
