// Integration tests: full protocol executions across graph families, seeds
// and wake-up patterns, checking the paper's guarantees end to end —
// correctness & completeness (Thm 2/5), the color bound κ₂Δ (Thm 5),
// leader independence (Thm 2 for C₀), cluster structure (Lemma 5), and
// locality (Thm 4).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

struct Scenario {
  std::string name;
  std::uint64_t seed;
};

graph::GeometricGraph make_net(const std::string& family,
                               std::uint64_t seed) {
  Rng rng(seed);
  if (family == "udg") return graph::random_udg(100, 7.0, 1.4, rng);
  if (family == "grid") return graph::grid_udg(10, 10, 1.0, 1.3, 0.2, rng);
  if (family == "clustered") {
    return graph::clustered_udg(5, 20, 9.0, 0.8, 1.4, rng);
  }
  URN_CHECK(false);
  return {};
}

struct RunFixture {
  graph::GeometricGraph net;
  Params params;
  RunResult run;
  std::uint32_t kappa2_measured = 0;
};

RunFixture execute(const std::string& family, std::uint64_t seed,
                   const std::string& wake) {
  RunFixture fx;
  fx.net = make_net(family, seed);
  const auto delta = fx.net.graph.max_closed_degree();
  const auto k1 = graph::kappa1(fx.net.graph).value;
  const auto k2 = graph::kappa2(fx.net.graph).value;
  fx.kappa2_measured = k2;
  fx.params = Params::practical(fx.net.graph.num_nodes(), delta,
                                std::max(2u, k1), std::max(2u, k2));
  Rng wrng(mix_seed(seed, 17));
  radio::WakeSchedule schedule =
      wake == "sync"
          ? radio::WakeSchedule::synchronous(fx.net.graph.num_nodes())
          : radio::WakeSchedule::uniform(fx.net.graph.num_nodes(), 3000,
                                         wrng);
  fx.run = run_coloring(fx.net.graph, fx.params, schedule, mix_seed(seed, 3));
  return fx;
}

using Case = std::tuple<std::string, std::uint64_t, std::string>;

class EndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(EndToEnd, ProducesValidBoundedLocalColoring) {
  const auto& [family, seed, wake] = GetParam();
  const RunFixture fx = execute(family, seed, wake);
  const auto& g = fx.net.graph;

  // Completeness within the default budget.
  ASSERT_TRUE(fx.run.all_decided) << "timed out";
  // Theorem 2 / 5: correct and complete coloring.
  EXPECT_TRUE(fx.run.check.correct);
  EXPECT_TRUE(fx.run.check.complete);

  // Theorem 5: at most κ₂Δ colors — stated with constants absorbed into
  // O(·).  The exact derivable bound (tc ≤ Δ−1 plus Corollary 1's range)
  // is Δ(κ₂+1) − 1; duplicate leader serves can add a few more, so we
  // assert the derivable bound with a κ₂ slack term.
  EXPECT_LE(fx.run.max_color,
            static_cast<graph::Color>(fx.params.delta *
                                          (fx.params.kappa2 + 1) +
                                      fx.params.kappa2));

  // Theorem 2 for C₀: the leaders form an independent set.
  std::vector<graph::NodeId> leaders;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (fx.run.colors[v] == 0) leaders.push_back(v);
  }
  EXPECT_EQ(leaders.size(), fx.run.num_leaders);
  EXPECT_TRUE(graph::is_independent_set(g, leaders));

  // Cluster structure: every non-leader's leader is an adjacent leader.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (fx.run.colors[v] == 0) continue;
    const graph::NodeId ell = fx.run.leader_of[v];
    ASSERT_NE(ell, graph::kInvalidNode) << "non-leader without leader";
    EXPECT_TRUE(g.has_edge(v, ell));
    EXPECT_EQ(fx.run.colors[ell], 0);
  }

  // Theorem 4 (derivable form): φ_v ≤ (κ₂+1)·θ_v + κ₂ for every node.
  const LocalityReport loc =
      check_locality(g, fx.run.colors, fx.params.kappa2);
  EXPECT_TRUE(loc.holds) << "worst node " << loc.worst << " ratio "
                         << loc.max_ratio;
  // And the ratio is O(κ₂) as the theorem states.
  EXPECT_LE(loc.max_ratio, static_cast<double>(fx.params.kappa2) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSeedsWakeups, EndToEnd,
    ::testing::Values(Case{"udg", 1, "sync"}, Case{"udg", 2, "uniform"},
                      Case{"udg", 3, "uniform"}, Case{"grid", 4, "sync"},
                      Case{"grid", 5, "uniform"},
                      Case{"clustered", 6, "uniform"},
                      Case{"clustered", 7, "sync"}, Case{"udg", 8, "uniform"}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::get<0>(param_info.param) + "_s" +
             std::to_string(std::get<1>(param_info.param)) + "_" +
             std::get<2>(param_info.param);
    });

// ------------------------------------------------------------ determinism -

TEST(Determinism, SameSeedSameColoring) {
  Rng rng(50);
  const auto net = graph::random_udg(80, 6.0, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  const auto r1 = run_coloring(net.graph, p, ws, 99);
  const auto r2 = run_coloring(net.graph, p, ws, 99);
  EXPECT_EQ(r1.colors, r2.colors);
  EXPECT_EQ(r1.medium.slots_run, r2.medium.slots_run);
  EXPECT_EQ(r1.medium.transmissions, r2.medium.transmissions);
}

TEST(Determinism, DifferentSeedsDifferentExecution) {
  Rng rng(51);
  const auto net = graph::random_udg(80, 6.0, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  const auto r1 = run_coloring(net.graph, p, ws, 1);
  const auto r2 = run_coloring(net.graph, p, ws, 2);
  EXPECT_NE(r1.medium.transmissions, r2.medium.transmissions);
}

// --------------------------------------------------------- wake extremes --

TEST(WakeExtremes, SequentialWakeStillValid) {
  Rng rng(52);
  const auto net = graph::random_udg(60, 5.5, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const auto k2 = std::max(2u, graph::kappa2(net.graph).value);
  const auto k1 = std::max(2u, graph::kappa1(net.graph).value);
  const Params p = Params::practical(net.graph.num_nodes(), delta, k1, k2);
  // Gap larger than a whole passive phase: the "long waiting periods"
  // extreme from Sect. 2.
  Rng wrng(53);
  const auto ws = radio::WakeSchedule::sequential(
      net.graph.num_nodes(), p.passive_slots() + 50, wrng);
  const auto run = run_coloring(net.graph, p, ws, 7);
  ASSERT_TRUE(run.all_decided);
  EXPECT_TRUE(run.check.valid());
}

TEST(WakeExtremes, LatencyIsMeasuredFromOwnWakeup) {
  // With sequential wake-up, absolute decision slots grow with the wake
  // index but per-node latency must stay bounded by the same budget.
  Rng rng(54);
  const auto net = graph::random_udg(50, 5.0, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Rng wrng(55);
  const auto ws =
      radio::WakeSchedule::sequential(net.graph.num_nodes(), 2000, wrng);
  const auto run = run_coloring(net.graph, p, ws, 11);
  ASSERT_TRUE(run.all_decided);
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    EXPECT_GE(run.decision_slot[v], run.wake_slot[v]);
  }
}

// ----------------------------------------------------------- slot budget --

TEST(Budget, TooFewSlotsReportsIncomplete) {
  Rng rng(56);
  const auto net = graph::random_udg(60, 5.0, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  const auto run = run_coloring(net.graph, p, ws, 1, /*max_slots=*/10);
  EXPECT_FALSE(run.all_decided);
  EXPECT_FALSE(run.check.complete);
  EXPECT_TRUE(run.check.correct);  // nothing decided is never wrong
}

TEST(Budget, DefaultBudgetCoversTheoryBound) {
  const Params p = Params::practical(100, 10, 4, 8);
  const auto ws = radio::WakeSchedule::synchronous(100);
  const radio::Slot budget = default_slot_budget(p, ws);
  // Must exceed a κ₂ multiple of the per-state cost.
  EXPECT_GT(budget, static_cast<radio::Slot>(p.kappa2) *
                        (p.passive_slots() + p.threshold()));
}

// ------------------------------------------------------- reset ablation ---

TEST(ResetAblation, NaivePolicyStillTerminatesOnSmallGraph) {
  // The strawman is *slower* and failure-prone, not necessarily wrong on
  // easy instances; on a small sparse graph it should still finish.
  Rng rng(57);
  const auto net = graph::random_udg(40, 6.0, 1.2, rng);
  const auto delta = net.graph.max_closed_degree();
  Params p = Params::practical(net.graph.num_nodes(), delta, 5, 10);
  p.reset_policy = ResetPolicy::kNaive;
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  const auto run = run_coloring(net.graph, p, ws, 3);
  EXPECT_TRUE(run.all_decided);
}

TEST(ResetAblation, NaivePolicyCascadesUnderAsynchronousWakeup) {
  // Under perfectly synchronous wake-up, all counters move in lockstep and
  // the naive "reset on higher counter" rule never fires; the cascading
  // behaviour the paper warns about needs staggered counters, so use an
  // asynchronous schedule.
  Rng rng(58);
  const auto net = graph::random_udg(80, 5.0, 1.4, rng);  // dense
  const auto delta = net.graph.max_closed_degree();
  Params paper = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Params naive = paper;
  naive.reset_policy = ResetPolicy::kNaive;
  Rng wrng(59);
  const auto ws = radio::WakeSchedule::uniform(net.graph.num_nodes(),
                                               4 * paper.threshold(), wrng);
  const auto run_paper = run_coloring(net.graph, paper, ws, 5);
  const auto run_naive = run_coloring(net.graph, naive, ws, 5);
  ASSERT_TRUE(run_paper.all_decided);
  EXPECT_GT(run_naive.total_resets, 0u);
}

}  // namespace
}  // namespace urn::core
