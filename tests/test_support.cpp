// Unit tests for the support module: RNG, math helpers, statistics,
// hot-path containers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/containers.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace urn {
namespace {

// ---------------------------------------------------------------- check ---

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(URN_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(URN_CHECK(false), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    URN_CHECK_MSG(false, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, SameSeedSameStream) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelowBound) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n * 0.01);
  }
}

TEST(Rng, RangeInclusiveBothEnds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceZeroNeverOneAlways) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(15);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(16);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng a(17);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, MixSeedIsOrderSensitive) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_NE(mix_seed(0, 0), mix_seed(0, 1));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  SUCCEED();
}

// ------------------------------------------------------------- mathutil ---

TEST(MathUtil, CeilLog2KnownValues) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtil, SafeLogPinsSmallInputs) {
  EXPECT_DOUBLE_EQ(safe_log(0), 1.0);
  EXPECT_DOUBLE_EQ(safe_log(1), 1.0);
  EXPECT_DOUBLE_EQ(safe_log(2), 1.0);
  EXPECT_NEAR(safe_log(100), std::log(100.0), 1e-12);
}

TEST(MathUtil, CeilMulLogRoundsUp) {
  // 2.0 * ln(100) = 9.21…, so the paper's ceiling convention gives 10.
  EXPECT_EQ(ceil_mul_log(2.0, 100), 10);
  EXPECT_EQ(ceil_mul_log(0.0, 100), 0);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
}

// Fact 1 (paper): e^t (1 − t²/n) ≤ (1 + t/n)^n ≤ e^t for n ≥ 1, |t| ≤ n.
class Fact1Sweep : public ::testing::TestWithParam<std::pair<double, double>> {
};

TEST_P(Fact1Sweep, BracketsHold) {
  const auto [t, n] = GetParam();
  const double mid = fact1_middle(t, n);
  EXPECT_LE(fact1_lower(t, n), mid + 1e-9);
  EXPECT_LE(mid, fact1_upper(t) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Fact1, Fact1Sweep,
    ::testing::Values(std::pair{-1.0, 2.0}, std::pair{-1.0, 10.0},
                      std::pair{-0.5, 1.0}, std::pair{0.0, 5.0},
                      std::pair{1.0, 1.0}, std::pair{1.0, 100.0},
                      std::pair{2.0, 4.0}, std::pair{3.0, 1000.0},
                      std::pair{-2.0, 8.0}, std::pair{0.1, 1.0}));

// ---------------------------------------------------------------- stats ---

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(20);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(37.0), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, AddAllAndMoments) {
  Samples s;
  s.add_all({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Samples, PercentileAfterLateAdd) {
  Samples s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
  s.add(10.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(LinearFit, ExactLineRecovered) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 1.0);
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  Rng rng(21);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(2.0 * x + 5.0 + rng.normal());
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, ConstantXGivesZeroSlope) {
  const LinearFit fit = fit_line({2.0, 2.0, 2.0}, {1.0, 5.0, 9.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

// ----------------------------------------------------------- containers ---

TEST(SmallVec, StaysInlineUpToN) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.inline_storage());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[i], static_cast<int>(i) * 10);
  }
}

TEST(SmallVec, SpillsToHeapBeyondNAndKeepsContents) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 40; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_FALSE(v.inline_storage());
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(v[i], static_cast<int>(i));
}

TEST(SmallVec, ClearKeepsHeapCapacity) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // no release on clear
  v.push_back(7);
  EXPECT_EQ(v[0], 7);
}

TEST(SmallVec, CopyIsDeepInlineAndHeap) {
  SmallVec<int, 4> small;
  small.push_back(1);
  SmallVec<int, 4> small_copy(small);
  small_copy.push_back(2);
  EXPECT_EQ(small.size(), 1u);
  EXPECT_EQ(small_copy.size(), 2u);

  SmallVec<int, 4> big;
  for (int i = 0; i < 16; ++i) big.push_back(i);
  SmallVec<int, 4> big_copy;
  big_copy = big;
  EXPECT_EQ(big_copy.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(big_copy[i], static_cast<int>(i));
  }
  big_copy.push_back(99);
  EXPECT_EQ(big.size(), 16u);
}

TEST(SmallVec, MoveStealsHeapAndCopiesInline) {
  SmallVec<int, 2> heap;
  for (int i = 0; i < 10; ++i) heap.push_back(i);
  SmallVec<int, 2> stolen(std::move(heap));
  EXPECT_EQ(stolen.size(), 10u);
  EXPECT_EQ(heap.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(heap.inline_storage());

  SmallVec<int, 2> inl;
  inl.push_back(5);
  SmallVec<int, 2> moved;
  moved = std::move(inl);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], 5);
}

TEST(SmallVec, RangeForIteratesInOrder) {
  SmallVec<int, 3> v;
  for (int i = 0; i < 7; ++i) v.push_back(i);
  int expect = 0;
  for (int x : v) EXPECT_EQ(x, expect++);
  EXPECT_EQ(expect, 7);
}

TEST(RingQueue, FifoOrderAcrossGrowth) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundMatchingDeque) {
  // Interleaved push/pop forces head_ to wrap; a std::deque is the oracle.
  RingQueue<int> q;
  std::deque<int> oracle;
  Rng rng(22);
  for (int step = 0; step < 2000; ++step) {
    if (oracle.empty() || rng.chance(0.6)) {
      q.push_back(step);
      oracle.push_back(step);
    } else {
      EXPECT_EQ(q.front(), oracle.front());
      q.pop_front();
      oracle.pop_front();
    }
    EXPECT_EQ(q.size(), oracle.size());
  }
  for (std::size_t i = 0; i < oracle.size(); ++i) EXPECT_EQ(q.at(i), oracle[i]);
}

TEST(RingQueue, ContainsScansFifoContents) {
  RingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) q.pop_front();
  EXPECT_FALSE(q.contains(4));  // popped
  EXPECT_TRUE(q.contains(5));
  EXPECT_TRUE(q.contains(9));
  EXPECT_FALSE(q.contains(10));
}

TEST(RingQueue, ClearKeepsBufferAndResets) {
  RingQueue<int> q;
  for (int i = 0; i < 20; ++i) q.push_back(i);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(42);
  EXPECT_EQ(q.front(), 42);
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace urn
