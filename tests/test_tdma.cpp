// Tests for the TDMA derivation (the paper's Sect. 1 motivation).

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/tdma.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

TEST(Tdma, FrameIsMaxColorPlusOne) {
  const graph::Graph g = graph::path_graph(4);
  const std::vector<graph::Color> colors = {0, 1, 0, 2};
  const TdmaSchedule s = derive_tdma(g, colors);
  EXPECT_EQ(s.frame, 3u);
  EXPECT_EQ(s.slot[3], 2u);
}

TEST(Tdma, RejectsIncompleteColoring) {
  const graph::Graph g = graph::path_graph(2);
  EXPECT_THROW((void)derive_tdma(g, {0, graph::kUncolored}), CheckError);
}

TEST(Tdma, LocalFrameTracksNeighborhoodColors) {
  // Path 0-1-2-3-4-5 with a high color only at one end.
  const graph::Graph g = graph::path_graph(6);
  const std::vector<graph::Color> colors = {9, 1, 0, 1, 0, 1};
  const TdmaSchedule s = derive_tdma(g, colors);
  EXPECT_EQ(s.frame, 10u);
  EXPECT_EQ(s.local_frame[0], 10u);  // sees itself
  EXPECT_EQ(s.local_frame[2], 10u);  // node 0 is 2 hops away
  EXPECT_EQ(s.local_frame[5], 2u);   // far end only sees colors {0,1}
  EXPECT_DOUBLE_EQ(s.bandwidth_share(5), 0.5);
}

TEST(Tdma, CorrectColoringIsDirectInterferenceFree) {
  const graph::Graph g = graph::cycle_graph(6);
  const auto colors = graph::greedy_coloring(g);
  const TdmaSchedule s = derive_tdma(g, colors);
  const TdmaReport report = analyze_tdma(g, s);
  EXPECT_TRUE(report.direct_interference_free);
  // On the even cycle a listener's two neighbors share a color — that is
  // the distance-2 conflict a 1-hop coloring legitimately allows.
  EXPECT_LE(report.max_neighbor_transmitters, 2u);
}

TEST(Tdma, MonochromaticEdgeIsDetected) {
  const graph::Graph g = graph::path_graph(3);
  const std::vector<graph::Color> colors = {0, 1, 1};  // 1-2 conflict
  const TdmaReport report = analyze_tdma(g, derive_tdma(g, colors));
  EXPECT_FALSE(report.direct_interference_free);
}

TEST(Tdma, TwoHopConflictsAllowedButBounded) {
  // Path 0-1-2: 0 and 2 may share a color under a 1-hop coloring; the
  // middle node then has 2 two-hop transmitters in that slot.
  const graph::Graph g = graph::path_graph(3);
  const std::vector<graph::Color> colors = {0, 1, 0};
  const TdmaReport report = analyze_tdma(g, derive_tdma(g, colors));
  EXPECT_TRUE(report.direct_interference_free);
  EXPECT_GE(report.max_two_hop_transmitters, 2u);
  // Node 1 cannot receive 0 or 2 cleanly (both up in the same slot).
  EXPECT_LT(report.clean_reception_fraction, 1.0);
}

TEST(Tdma, EmptyGraphTrivialSchedule) {
  const graph::Graph g = graph::empty_graph(3);
  const TdmaSchedule s = derive_tdma(g, {0, 0, 0});
  EXPECT_EQ(s.frame, 1u);
  const TdmaReport report = analyze_tdma(g, s);
  EXPECT_TRUE(report.direct_interference_free);
  EXPECT_DOUBLE_EQ(report.clean_reception_fraction, 1.0);
}

// End-to-end: the protocol's coloring yields a direct-interference-free
// schedule whose two-hop conflicts stay below the small-constant bound the
// paper argues for (κ₂ conflicting senders at distance 2).
class TdmaEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(TdmaEndToEnd, ProtocolColoringGivesCleanSchedule) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 9);
  const auto net = graph::random_udg(80, 6.5, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto run = core::run_coloring(
      net.graph, p,
      radio::WakeSchedule::synchronous(net.graph.num_nodes()),
      static_cast<std::uint64_t>(GetParam()));
  ASSERT_TRUE(run.all_decided);
  ASSERT_TRUE(run.check.valid());
  const TdmaSchedule s = derive_tdma(net.graph, run.colors);
  const TdmaReport report = analyze_tdma(net.graph, s);
  EXPECT_TRUE(report.direct_interference_free);
  // Same-slot transmitters near a listener share a color, hence form an
  // independent set: ≤ κ₁ at one hop and ≤ κ₂ at two hops (the paper's
  // "small constant number of interfering senders").
  EXPECT_LE(report.max_neighbor_transmitters, p.kappa1);
  EXPECT_LE(report.max_two_hop_transmitters, p.kappa2);
  // Local frames never exceed the global frame.
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    EXPECT_LE(s.local_frame[v], s.frame);
    EXPECT_GT(s.local_frame[v], s.slot[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdmaEndToEnd, ::testing::Range(0, 5));

}  // namespace
}  // namespace urn::core
