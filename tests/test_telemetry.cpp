// Tests for the live telemetry subsystem (src/obs/telemetry).
//
// The load-bearing properties:
//
//  * exactness — sharded counters and histograms lose nothing under
//    concurrent hammering (relaxed adds on disjoint cache lines, sums
//    commute), so a snapshot at quiescence equals the serial total;
//  * merge algebra — HistogramSnapshot::merge over *any* partition of a
//    sample stream, in any order, is bit-identical to recording the whole
//    stream into one histogram (the same partition-invariant algebra the
//    trial executor pins for Samples / RunLedger);
//  * probe fidelity — an EngineProbe-instrumented run leaves the registry
//    equal, field for field, to the run's own RunStats, with zero gauge
//    residue, and never perturbs results (bit-identity);
//  * export round-trip — the JSONL snapshot line parses with
//    obs::parse_bench_json (what urn_top tails) and the Prometheus
//    exposition is well-formed (cumulative buckets, +Inf == count);
//  * the bench regression differ skips `telemetry.*` keys by default, so
//    telemetry-enabled bench runs can never flake the gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "exec/pool.hpp"
#include "graph/generators.hpp"
#include "obs/profile.hpp"
#include "obs/regress.hpp"
#include "obs/telemetry.hpp"
#include "radio/misaligned_engine.hpp"
#include "support/rng.hpp"

namespace urn::obs::telemetry {
namespace {

// ----------------------------------------------------------- primitives --

TEST(TelemetryCounter, AccumulatesAndSumsShards) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  // Explicit shards: the sum is shard-location independent.
  c.add_to_shard(0, 10);
  c.add_to_shard(kShards - 1, 20);
  c.add_to_shard(kShards + 2, 30);  // wraps to shard 2
  EXPECT_EQ(c.value(), 67u);
}

TEST(TelemetryCounter, ExactUnderConcurrentHammering) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(TelemetryGauge, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

// ------------------------------------------------------ histogram buckets --

TEST(TelemetryHistogram, BucketBoundaries) {
  // Bucket b holds the values of bit width b: 0 → bucket 0, then
  // [2^(b−1), 2^b − 1] → bucket b.
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(7), 3u);
  EXPECT_EQ(bucket_of(8), 4u);
  for (std::size_t b = 1; b < 64; ++b) {
    EXPECT_EQ(bucket_of(bucket_lower(b)), b) << b;
    EXPECT_EQ(bucket_of(bucket_upper(b)), b) << b;
    EXPECT_LE(bucket_lower(b), bucket_upper(b));
    EXPECT_EQ(bucket_lower(b + 1), bucket_upper(b) + 1);
  }
}

TEST(TelemetryHistogram, OverflowBucketAbsorbsTopValues) {
  EXPECT_EQ(bucket_of(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(bucket_upper(64), ~std::uint64_t{0});
  Histogram h;
  h.record(~std::uint64_t{0});
  h.record(std::uint64_t{1} << 63);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[64], 2u);
  EXPECT_EQ(s.max_bound(), ~std::uint64_t{0});
}

TEST(TelemetryHistogram, EmptySnapshotIsInert) {
  const HistogramSnapshot s = Histogram{}.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min_bound(), 0u);
  EXPECT_EQ(s.max_bound(), 0u);
}

TEST(TelemetryHistogram, MeanAndQuantilesTrackTheStream) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Log buckets: quantiles are estimates, but must stay within the
  // bucket of the true quantile (factor-of-2 resolution).
  EXPECT_GE(s.quantile(0.5), 256.0);
  EXPECT_LE(s.quantile(0.5), 1023.0);
  EXPECT_GE(s.quantile(0.95), 512.0);
  EXPECT_LE(s.quantile(0.95), 1023.0);
  EXPECT_LE(s.quantile(0.0), s.quantile(1.0));
  EXPECT_EQ(s.min_bound(), 1u);
}

// ------------------------------------------------------- merge algebra --

TEST(TelemetryHistogram, MergeOfRandomPartitionIsExact) {
  // Record a stream whole; then partition it randomly into k histograms
  // and merge their snapshots in shuffled order.  Every field must be
  // bit-identical — the partition-invariant merge algebra.
  std::mt19937_64 rng(0x7e1e7u);
  for (std::size_t parts : {2u, 5u, 16u}) {
    std::vector<std::uint64_t> values;
    for (std::size_t i = 0; i < 5000; ++i) {
      // Mix of magnitudes so many buckets (incl. overflow) are hit.
      const int shift = static_cast<int>(rng() % 64);
      values.push_back(rng() >> shift);
    }
    Histogram whole;
    std::vector<Histogram> pieces(parts);
    for (std::uint64_t v : values) {
      whole.record(v);
      pieces[rng() % parts].record(v);
    }
    std::vector<HistogramSnapshot> snaps;
    snaps.reserve(parts);
    for (const Histogram& p : pieces) snaps.push_back(p.snapshot());
    std::shuffle(snaps.begin(), snaps.end(), rng);
    HistogramSnapshot merged;
    for (const HistogramSnapshot& s : snaps) merged.merge(s);
    const HistogramSnapshot expect = whole.snapshot();
    EXPECT_EQ(merged.count, expect.count);
    EXPECT_EQ(merged.sum, expect.sum);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      ASSERT_EQ(merged.buckets[b], expect.buckets[b]) << "bucket " << b;
    }
    EXPECT_DOUBLE_EQ(merged.quantile(0.5), expect.quantile(0.5));
  }
}

TEST(TelemetryHistogram, ShardedRecordingEqualsSerialSnapshot) {
  // Concurrent recording spreads over shards; the snapshot must still be
  // the exact whole-stream histogram.
  Histogram concurrent;
  Histogram serial;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      serial.record(t * 1000 + (i % 977));
    }
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        concurrent.record(t * 1000 + (i % 977));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot a = concurrent.snapshot();
  const HistogramSnapshot b = serial.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    ASSERT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

// ------------------------------------------------------------- registry --

TEST(TelemetryRegistry, LookupIsStableAndSnapshotSorted) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  Counter& c1 = reg.counter("z.last");
  Counter& c2 = reg.counter("a.first");
  EXPECT_EQ(&c1, &reg.counter("z.last"));  // stable address on re-lookup
  c1.add(1);
  c2.add(2);
  reg.gauge("mid.level").set(-5);
  reg.histogram("h.lat").record(9);
  EXPECT_FALSE(reg.empty());
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");  // name-sorted
  EXPECT_EQ(snap.counters[1].first, "z.last");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  EXPECT_NE(snap.find_counter("z.last"), nullptr);
  EXPECT_EQ(*snap.find_counter("z.last"), 1u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
  ASSERT_NE(snap.find_histogram("h.lat"), nullptr);
  EXPECT_EQ(snap.find_histogram("h.lat")->count, 1u);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

// --------------------------------------------------------------- export --

TEST(TelemetryExport, PromNamesAreSanitized) {
  EXPECT_EQ(prom_name("engine.slots"), "urn_engine_slots");
  EXPECT_EQ(prom_name("engine.slots", "_total"), "urn_engine_slots_total");
  EXPECT_EQ(prom_name("pool.worker0.busy.ns"), "urn_pool_worker0_busy_ns");
}

TEST(TelemetryExport, PrometheusExpositionIsWellFormed) {
  Registry reg;
  reg.counter("engine.slots").add(100);
  reg.gauge("engine.undecided").set(7);
  Histogram& h = reg.histogram("run.lat");
  h.record(1);
  h.record(3);
  h.record(100);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE urn_engine_slots_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("urn_engine_slots_total 100"), std::string::npos);
  EXPECT_NE(text.find("# TYPE urn_engine_undecided gauge"),
            std::string::npos);
  EXPECT_NE(text.find("urn_engine_undecided 7"), std::string::npos);
  // Histogram: cumulative buckets ending in the mandatory +Inf == count.
  EXPECT_NE(text.find("# TYPE urn_run_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("urn_run_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("urn_run_lat_sum 104"), std::string::npos);
  EXPECT_NE(text.find("urn_run_lat_count 3"), std::string::npos);
  // Cumulative monotonicity: every bucket sample ≤ the count.
  std::size_t pos = 0;
  std::size_t buckets_seen = 0;
  double last = 0.0;
  while ((pos = text.find("urn_run_lat_bucket{", pos)) !=
         std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    const double v = std::strtod(text.c_str() + space + 1, nullptr);
    EXPECT_GE(v, last);  // cumulative series never decreases
    last = v;
    ++buckets_seen;
    pos = space;
  }
  EXPECT_GE(buckets_seen, 2u);
  EXPECT_EQ(last, 3.0);
}

TEST(TelemetryExport, JsonlLineParsesAsBenchDoc) {
  Registry reg;
  reg.counter("engine.slots").add(12);
  reg.gauge("engine.undecided").set(-3);
  Histogram& h = reg.histogram("run.lat");
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  Snapshot snap = reg.snapshot();
  snap.seq = 5;
  snap.wall_ms = 1700000000123ull;
  snap.uptime_s = 2.5;
  const std::string line = to_jsonl_line(snap);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const BenchDoc doc = parse_bench_json(line);
  ASSERT_TRUE(doc.ok);
  const BenchEntry* seq = doc.find("telemetry.seq");
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(seq->value, 5.0);
  EXPECT_EQ(doc.find("engine.slots")->value, 12.0);
  EXPECT_EQ(doc.find("engine.undecided")->value, -3.0);
  EXPECT_EQ(doc.find("run.lat.count")->value, 32.0);
  EXPECT_EQ(doc.find("run.lat.sum")->value, 496.0);
  // Non-empty buckets are re-mergeable downstream.
  EXPECT_NE(doc.find("run.lat.bucket0"), nullptr);
  EXPECT_NE(doc.find("run.lat.bucket5"), nullptr);
}

TEST(TelemetrySnapshotter, StreamsAndFlushesFinalSnapshot) {
  const std::string path =
      testing::TempDir() + "telemetry_snap_stream.jsonl";
  Registry reg;
  Counter& work = reg.counter("test.work");
  {
    SnapshotterOptions opts;
    opts.jsonl_path = path;
    opts.interval_ms = 5;
    Snapshotter snap(reg, opts);
    work.add(41);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    work.add(1);
    snap.stop();  // must append a final snapshot with the current state
    EXPECT_GE(snap.snapshots_taken(), 1u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  // Last line = final state: test.work == 42, seq strictly increasing.
  const std::size_t last_nl = text.rfind('\n');
  ASSERT_NE(last_nl, std::string::npos);
  const std::size_t prev_nl = text.rfind('\n', last_nl - 1);
  const std::string last_line = text.substr(
      prev_nl == std::string::npos ? 0 : prev_nl + 1, last_nl);
  const BenchDoc doc = parse_bench_json(last_line);
  ASSERT_TRUE(doc.ok);
  EXPECT_EQ(doc.find("test.work")->value, 42.0);
  EXPECT_GE(doc.find("telemetry.seq")->value, 1.0);
}

// ------------------------------------------------------- engine probes --

core::Params small_params(std::size_t n, std::uint32_t delta) {
  return core::Params::practical(n, delta, 4, 8);
}

TEST(TelemetryEngineProbe, FinalSnapshotMatchesRunStatsFieldForField) {
  Rng rng(11);
  const auto net = graph::random_udg(60, 6.0, 1.6, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = small_params(net.graph.num_nodes(), delta);
  const auto schedule =
      radio::WakeSchedule::synchronous(net.graph.num_nodes());

  Registry reg;
  core::TraceOptions topts;
  topts.telemetry = &reg;
  const core::RunResult probed =
      core::run_coloring_traced(net.graph, params, schedule, 99, topts);
  const core::RunResult plain =
      core::run_coloring(net.graph, params, schedule, 99);

  // Bit-identity: the probe reads counts, never the RNG streams.
  EXPECT_EQ(probed.colors, plain.colors);
  EXPECT_EQ(probed.decision_slot, plain.decision_slot);
  EXPECT_EQ(probed.medium.transmissions, plain.medium.transmissions);
  EXPECT_EQ(probed.medium.slots_run, plain.medium.slots_run);

  // Field-for-field: registry totals == the run's own RunStats.
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(*snap.find_counter("engine.slots"),
            static_cast<std::uint64_t>(probed.medium.slots_run));
  EXPECT_EQ(*snap.find_counter("engine.transmissions"),
            probed.medium.transmissions);
  EXPECT_EQ(*snap.find_counter("engine.deliveries"),
            probed.medium.deliveries);
  EXPECT_EQ(*snap.find_counter("engine.collisions"),
            probed.medium.collisions);
  EXPECT_EQ(*snap.find_counter("engine.drops"), probed.medium.dropped);
  EXPECT_EQ(*snap.find_counter("engine.runs"), 1u);
  EXPECT_EQ(*snap.find_counter("engine.runs_completed"), 1u);

  std::uint64_t decided = 0;
  std::uint64_t wakes = 0;
  for (radio::Slot s : probed.decision_slot) {
    if (s >= 0) ++decided;
  }
  wakes = probed.wake_slot.size();
  EXPECT_EQ(*snap.find_counter("engine.decisions"), decided);
  EXPECT_EQ(*snap.find_counter("engine.wakes"), wakes);

  // The live gauge must drain to zero when the run retires.
  EXPECT_EQ(*snap.find_gauge("engine.undecided"), 0);

  // Decision-latency histogram: one sample per decided node, sum equal
  // to the run's total latency.
  const HistogramSnapshot* lat = snap.find_histogram("run.decision_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, decided);
  std::uint64_t total_latency = 0;
  for (radio::Slot t : probed.latency) {
    total_latency += static_cast<std::uint64_t>(t);
  }
  EXPECT_EQ(lat->sum, total_latency);
}

TEST(TelemetryEngineProbe, AccumulatesAcrossRunsAndFastForwards) {
  // Two runs with a long dead wake gap: fast-forwarded slots must be
  // counted (engine.slots == Σ slots_run exactly), and engine.runs == 2.
  Rng rng(5);
  const auto net = graph::random_udg(40, 5.0, 1.6, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = small_params(net.graph.num_nodes(), delta);
  std::vector<radio::Slot> wake(net.graph.num_nodes(), 50000);
  const radio::WakeSchedule schedule(std::move(wake));

  Registry reg;
  core::TraceOptions topts;
  topts.telemetry = &reg;
  std::uint64_t expect_slots = 0;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto run = core::run_coloring_traced(net.graph, params, schedule,
                                               seed, topts);
    expect_slots += static_cast<std::uint64_t>(run.medium.slots_run);
    EXPECT_GT(run.medium.slots_run, 50000);  // the gap was simulated
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(*snap.find_counter("engine.slots"), expect_slots);
  EXPECT_EQ(*snap.find_counter("engine.runs"), 2u);
  EXPECT_EQ(*snap.find_counter("engine.runs_completed"), 2u);
  EXPECT_EQ(*snap.find_gauge("engine.undecided"), 0);
}

TEST(TelemetryEngineProbe, LeaderElectionProbed) {
  Rng rng(21);
  const auto net = graph::random_udg(50, 6.0, 1.6, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = small_params(net.graph.num_nodes(), delta);
  const auto schedule =
      radio::WakeSchedule::synchronous(net.graph.num_nodes());
  Registry reg;
  core::TraceOptions topts;
  topts.telemetry = &reg;
  const auto probed = core::run_leader_election_traced(
      net.graph, params, schedule, 7, topts);
  const auto plain =
      core::run_leader_election(net.graph, params, schedule, 7);
  EXPECT_EQ(probed.leaders, plain.leaders);
  EXPECT_EQ(probed.medium.slots_run, plain.medium.slots_run);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(*snap.find_counter("engine.slots"),
            static_cast<std::uint64_t>(probed.medium.slots_run));
  EXPECT_EQ(*snap.find_counter("engine.runs_completed"), 1u);
  EXPECT_EQ(*snap.find_gauge("engine.undecided"), 0);
}

// The misaligned engine shares the probe seam; drive it with a scripted
// protocol (tx in fixed local slots) and check stats fidelity.
struct HalfScript {
  radio::NodeId id = graph::kInvalidNode;
  radio::Slot tx_at = -1;
  void on_wake(radio::SlotContext&) {}
  std::optional<radio::Message> on_slot(radio::SlotContext& ctx) {
    if (ctx.now == tx_at) {
      return radio::make_decided(id, static_cast<int>(ctx.now));
    }
    return std::nullopt;
  }
  void on_receive(radio::SlotContext&, const radio::Message&) {}
  [[nodiscard]] bool decided() const { return false; }
};

TEST(TelemetryEngineProbe, MisalignedEngineMatchesStats) {
  const graph::Graph g = graph::path_graph(3);
  std::vector<HalfScript> nodes(3);
  for (radio::NodeId v = 0; v < 3; ++v) {
    nodes[v].id = v;
    nodes[v].tx_at = static_cast<radio::Slot>(2 + v);
  }
  Registry reg;
  EngineProbe probe(reg);
  radio::MisalignedEngine<HalfScript, obs::NullSink, EngineProbe> eng(
      g, radio::WakeSchedule::synchronous(3), std::move(nodes), {0, 1, 0},
      1);
  eng.set_telemetry(&probe);
  const radio::RunStats stats = eng.run(64);
  probe.end_run();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(*snap.find_counter("engine.slots"),
            static_cast<std::uint64_t>(stats.slots_run));
  EXPECT_EQ(*snap.find_counter("engine.transmissions"),
            stats.transmissions);
  EXPECT_EQ(*snap.find_counter("engine.deliveries"), stats.deliveries);
  EXPECT_EQ(*snap.find_counter("engine.collisions"), stats.collisions);
  EXPECT_EQ(*snap.find_gauge("engine.undecided"), 0);
}

// --------------------------------------------------------- pool probing --

TEST(TelemetryPoolProbe, CountsEveryChunkOnce) {
  for (std::size_t jobs : {1u, 4u}) {
    Registry reg;
    PoolProbe probe(reg, jobs);
    exec::TrialPool pool(jobs);
    std::atomic<std::uint64_t> hits{0};
    pool.run(13, [&hits](std::size_t) { ++hits; }, &probe);
    EXPECT_EQ(hits.load(), 13u);
    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(*snap.find_counter("pool.chunks"), 13u) << "jobs=" << jobs;
    EXPECT_EQ(*snap.find_gauge("pool.workers"),
              static_cast<std::int64_t>(jobs));
    // Per-worker chunk counters partition the total.
    std::uint64_t per_worker_total = 0;
    for (std::size_t w = 0; w < jobs; ++w) {
      const std::uint64_t* c = snap.find_counter(
          "pool.worker" + std::to_string(w) + ".chunks");
      if (c != nullptr) per_worker_total += *c;
    }
    EXPECT_EQ(per_worker_total, 13u) << "jobs=" << jobs;
    const HistogramSnapshot* wait =
        snap.find_histogram("pool.chunk_wait.ns");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->count, jobs);  // one drain report per worker
  }
}

// ---------------------------------------- end-to-end with the trial loop --

TEST(TelemetryTrialLoop, TelemetryNeverPerturbsAggregates) {
  Rng rng(31);
  const auto net = graph::random_udg(48, 5.5, 1.6, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = small_params(net.graph.num_nodes(), delta);
  const auto schedules =
      analysis::uniform_schedule(net.graph.num_nodes(), 64);

  const analysis::CoreAggregate plain =
      analysis::run_core_trials(net.graph, params, schedules, 6, 77);

  Registry reg;
  analysis::TrialExecOptions exec;
  exec.jobs = 3;
  exec.telemetry = &reg;
  const analysis::CoreAggregate probed = analysis::run_core_trials(
      net.graph, params, schedules, 6, 77, exec);

  EXPECT_EQ(probed.valid, plain.valid);
  EXPECT_EQ(probed.max_color.max(), plain.max_color.max());
  EXPECT_EQ(probed.slots_run.mean(), plain.slots_run.mean());
  EXPECT_EQ(probed.mean_latency.mean(), plain.mean_latency.mean());

  // Registry totals match the aggregate: Σ slots_run over trials.
  const Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(
      static_cast<double>(*snap.find_counter("engine.slots")),
      probed.slots_run.mean() *
          static_cast<double>(probed.slots_run.count()));
  EXPECT_EQ(*snap.find_counter("engine.runs"), 6u);
  EXPECT_EQ(*snap.find_gauge("engine.undecided"), 0);
  // The pool probe reported: chunk counts cover every trial chunk.
  EXPECT_NE(snap.find_counter("pool.chunks"), nullptr);
  EXPECT_EQ(*snap.find_gauge("pool.workers"), 3);
}

// ----------------------------------- shared-registry concurrency (TSan) --

// Hammer one telemetry Registry and one obs::CounterRegistry from trial
// pool workers simultaneously — the run most likely to surface a data
// race under `URN_SANITIZE=thread` (the CI tsan leg runs this label).
TEST(TelemetryThreading, PoolWorkersHammerSharedRegistries) {
  Registry reg;
  CounterRegistry prof;
  Counter& telemetry_hits = reg.counter("hammer.hits");
  Histogram& hist = reg.histogram("hammer.values");
  CounterCell prof_hits = prof.handle("prof.hits");
  constexpr std::size_t kChunks = 64;
  constexpr std::uint64_t kPerChunk = 500;
  exec::TrialPool pool(8);
  pool.run(kChunks, [&](std::size_t chunk) {
    for (std::uint64_t i = 0; i < kPerChunk; ++i) {
      telemetry_hits.add(1);
      hist.record(chunk * kPerChunk + i);
      prof_hits.add(1);
      // Lookup-or-create races on the registry maps as well.
      reg.counter("hammer.chunk" + std::to_string(chunk % 4)).add(1);
      prof.add("prof.chunk" + std::to_string(chunk % 4), 1);
    }
  });
  EXPECT_EQ(telemetry_hits.value(), kChunks * kPerChunk);
  EXPECT_EQ(hist.snapshot().count, kChunks * kPerChunk);
  EXPECT_EQ(prof.value("prof.hits"), kChunks * kPerChunk);
  std::uint64_t spread = 0;
  std::uint64_t prof_spread = 0;
  for (int i = 0; i < 4; ++i) {
    spread += reg.counter("hammer.chunk" + std::to_string(i)).value();
    prof_spread += prof.value("prof.chunk" + std::to_string(i));
  }
  EXPECT_EQ(spread, kChunks * kPerChunk);
  EXPECT_EQ(prof_spread, kChunks * kPerChunk);
}

// ------------------------------------------------ differ telemetry skip --

TEST(TelemetryDiffer, TelemetryKeysAreSkippedByDefault) {
  const BenchDoc base = parse_bench_json(
      "{\"m2.cell.slots_run\": 100, \"telemetry.engine.slots\": 5,"
      " \"telemetry.pool.busy.ns\": 999}");
  const BenchDoc fresh = parse_bench_json(
      "{\"m2.cell.slots_run\": 100, \"telemetry.engine.slots\": 7,"
      " \"telemetry.pool.busy.ns\": 123456}");
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(fresh.ok);
  const DiffReport report = diff_bench(base, fresh);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 1u);
  EXPECT_EQ(report.skipped, 2u);
}

TEST(TelemetryDiffer, MissingTelemetryKeyIsNotARegression) {
  // A telemetry-enabled baseline diffed against a telemetry-off fresh
  // run: the telemetry keys vanish, which must not trip the gate.
  const BenchDoc base = parse_bench_json(
      "{\"m2.cell.slots_run\": 100, \"telemetry.engine.slots\": 5}");
  const BenchDoc fresh = parse_bench_json("{\"m2.cell.slots_run\": 100}");
  const DiffReport report = diff_bench(base, fresh);
  EXPECT_TRUE(report.ok());
}

TEST(TelemetryDiffer, NonTelemetryDriftStillFails) {
  const BenchDoc base = parse_bench_json(
      "{\"m2.cell.slots_run\": 100, \"telemetry.engine.slots\": 5}");
  const BenchDoc fresh = parse_bench_json(
      "{\"m2.cell.slots_run\": 101, \"telemetry.engine.slots\": 5}");
  const DiffReport report = diff_bench(base, fresh);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].key, "m2.cell.slots_run");
}

}  // namespace
}  // namespace urn::obs::telemetry
