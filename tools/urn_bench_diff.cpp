/// \file urn_bench_diff.cpp
/// \brief Bench regression gate: compare freshly produced BENCH_*.json
///        files against a committed baseline directory and fail on drift.
///
/// The bench binaries emit flat `BENCH_<name>.json` documents when the
/// `URN_BENCH_JSON` environment variable names a directory.  Runs are
/// fixed-seed and bit-reproducible, so the default comparison is exact;
/// wall-clock profile counters (keys containing ".ns"), the worker-thread
/// count ("jobs") and live-telemetry exports ("telemetry.") are skipped
/// by default, and `--rel-tol` / `--abs-tol` open per-metric tolerances for
/// intentionally noisy metrics.  Throughput keys (default substring
/// ".noderate.") form a rate class: they must be present and numeric but
/// are never compared exactly — `--rate-tol 0.3` additionally fails a
/// fresh rate more than 30% below the baseline (one-sided).  Attribution
/// keys (default substring "explain.") form a fourth class with their own
/// two-sided `--explain-tol`; at the default 0 they stay exact, so the
/// committed gate remains bit-identical.
///
/// Examples:
///   urn_bench_diff --baseline bench/baseline --fresh build/bench_json
///   urn_bench_diff --baseline a.json --fresh b.json --rel-tol 0.05
///
/// Exit status: 0 when every baseline metric matches, 1 on regression
/// (including baseline files missing from the fresh directory), 2 on
/// usage / I/O errors.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/regress.hpp"
#include "support/cli.hpp"

namespace {

namespace fs = std::filesystem;

/// Split a comma-separated list, dropping empty pieces.
std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Baseline may be a single file or a directory of BENCH_*.json files.
std::vector<fs::path> collect_bench_files(const fs::path& root) {
  std::vector<fs::path> out;
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(root, ec)) {
      const fs::path& p = entry.path();
      if (p.extension() == ".json" &&
          p.filename().string().rfind("BENCH_", 0) == 0) {
        out.push_back(p);
      }
    }
    std::sort(out.begin(), out.end());
  } else if (fs::is_regular_file(root, ec)) {
    out.push_back(root);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace urn;

  CliFlags flags;
  flags.add_string("baseline", "",
                   "committed baseline: a BENCH_*.json file or a directory "
                   "of them (required)");
  flags.add_string("fresh", "",
                   "freshly produced counterpart: file if --baseline is a "
                   "file, directory otherwise (required)");
  flags.add_double("rel-tol", 0.0,
                   "allowed relative drift per numeric metric");
  flags.add_double("abs-tol", 0.0,
                   "allowed absolute drift per numeric metric");
  flags.add_string("skip", ".ns,jobs,telemetry.",
                   "comma-separated key substrings to skip (wall-clock "
                   "counters, the worker-thread count and live-telemetry "
                   "exports by default; empty = compare everything)");
  flags.add_string("rate-keys", ".noderate.",
                   "comma-separated key substrings treated as throughput "
                   "rates: must be present and numeric, never compared "
                   "exactly (empty = no rate class)");
  flags.add_double("rate-tol", 0.0,
                   "one-sided relative tolerance for rate keys: fail when "
                   "fresh < baseline*(1-tol); 0 disables the value check");
  flags.add_string("explain-keys", "explain.",
                   "comma-separated key substrings treated as attribution "
                   "metrics: compared two-sided under --explain-tol "
                   "(empty = no explain class)");
  flags.add_double("explain-tol", 0.0,
                   "two-sided tolerance for explain keys: allowed drift is "
                   "tol + tol*|baseline|; 0 keeps the class exact");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage("urn_bench_diff").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("urn_bench_diff").c_str());
    return 0;
  }
  const fs::path baseline_root = flags.get_string("baseline");
  const fs::path fresh_root = flags.get_string("fresh");
  if (baseline_root.empty() || fresh_root.empty()) {
    std::fprintf(stderr, "error: --baseline and --fresh are required\n%s",
                 flags.usage("urn_bench_diff").c_str());
    return 2;
  }

  obs::DiffOptions options;
  options.rel_tol = flags.get_double("rel-tol");
  options.abs_tol = flags.get_double("abs-tol");
  options.skip_substrings = split_csv(flags.get_string("skip"));
  options.rate_substrings = split_csv(flags.get_string("rate-keys"));
  options.rate_rel_tol = flags.get_double("rate-tol");
  options.explain_substrings = split_csv(flags.get_string("explain-keys"));
  options.explain_tol = flags.get_double("explain-tol");

  const std::vector<fs::path> baseline_files =
      collect_bench_files(baseline_root);
  if (baseline_files.empty()) {
    std::fprintf(stderr, "error: no BENCH_*.json under %s\n",
                 baseline_root.string().c_str());
    return 2;
  }
  const bool dir_mode = fs::is_directory(baseline_root);

  std::size_t total_compared = 0;
  std::size_t total_skipped = 0;
  std::size_t total_regressions = 0;
  for (const fs::path& base_path : baseline_files) {
    const fs::path fresh_path =
        dir_mode ? fresh_root / base_path.filename() : fresh_root;
    const obs::BenchDoc base = obs::read_bench_json_file(base_path.string());
    if (!base.ok) {
      std::fprintf(stderr, "error: cannot parse %s\n",
                   base_path.string().c_str());
      return 2;
    }
    const obs::BenchDoc fresh =
        obs::read_bench_json_file(fresh_path.string());
    if (!fresh.ok) {
      std::printf("REGRESSION %s: fresh file %s missing or unparsable\n",
                  base_path.filename().string().c_str(),
                  fresh_path.string().c_str());
      total_regressions += base.entries.size();
      continue;
    }
    const obs::DiffReport diff = obs::diff_bench(base, fresh, options);
    total_compared += diff.compared;
    total_skipped += diff.skipped;
    total_regressions += diff.regressions.size();
    for (const obs::DiffFinding& r : diff.regressions) {
      std::printf("REGRESSION %s %s: %s\n",
                  base_path.filename().string().c_str(), r.key.c_str(),
                  r.what.c_str());
    }
  }

  std::printf("urn_bench_diff: %zu files, %zu metrics compared, "
              "%zu skipped, %zu regressions\n",
              baseline_files.size(), total_compared, total_skipped,
              total_regressions);
  if (total_regressions != 0) return 1;
  std::printf("OK: fresh results match the baseline\n");
  return 0;
}
