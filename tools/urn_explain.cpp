/// \file urn_explain.cpp
/// \brief Causal latency attribution CLI: decompose "slots to decide"
///        into causes (obs/explain.hpp) and statistically compare runs.
///
/// Subcommands (positional arguments come before flags):
///
///   urn_explain summarize <trace>            network-wide attribution
///   urn_explain node <id> <trace>            one node's breakdown
///   urn_explain diff <traceA> <traceB>       per-cause deltas + CIs
///
/// Common flags: --kappa2 K and --passive-slots P forward the run
/// parameters the trace alone cannot reveal (without --passive-slots,
/// A_i protocol waits are reported as idle); --json switches to flat
/// machine-readable output.  `summarize --export chrome:PATH` writes a
/// per-node cause-span icicle for Perfetto / chrome://tracing.
///
/// Exit status: 0 on success, 1 when the exact-accounting invariant
/// fails (a decided node's causes do not sum to its recorded latency —
/// a truncated or corrupted capture), 2 on usage / I/O errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/bintrace.hpp"
#include "obs/explain.hpp"
#include "support/cli.hpp"

namespace {

using namespace urn;

int usage_error(const char* msg) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: urn_explain summarize <trace> [flags]\n"
               "       urn_explain node <id> <trace> [flags]\n"
               "       urn_explain diff <traceA> <traceB> [flags]\n"
               "flags: --kappa2 K --passive-slots P --json\n"
               "       --export chrome:PATH (summarize)\n"
               "       --resamples N --seed S --confidence C (diff)\n",
               msg);
  return 2;
}

/// Load a trace or exit-style fail: prints the reader's one-line error.
bool load(const std::string& path, obs::ParsedTraceFile& out) {
  out = obs::read_trace_file(path);
  if (!out.ok) {
    std::fprintf(stderr, "error: %s\n", out.error.c_str());
    return false;
  }
  return true;
}

void print_report(const obs::ExplainReport& r) {
  std::printf("attribution: %zu nodes, %zu decided, %zu exact, "
              "%zu fig2 violations\n",
              r.nodes.size(), r.decided_nodes, r.exact_nodes,
              r.fig2_violations);
  std::printf("%-12s %10s %8s\n", "cause", "slots", "share");
  for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
    const auto cause = static_cast<obs::Cause>(c);
    std::printf("%-12s %10lld", obs::cause_name(cause),
                static_cast<long long>(r.totals[c]));
    if (cause != obs::Cause::kAsleep) {
      std::printf(" %7.1f%%", 100.0 * r.share(cause));
    }
    std::printf("\n");
  }
  std::printf("top cause: %s (%.1f%% of %lld stall slots)\n",
              obs::cause_name(r.top_cause()),
              100.0 * r.share(r.top_cause()),
              static_cast<long long>(r.total_stall()));
  if (r.exact_ok()) {
    std::printf("invariant OK: causes sum to decision latency for every "
                "decided node\n");
  } else {
    std::printf("invariant FAILED: %zu of %zu decided nodes do not sum "
                "to their recorded latency\n",
                r.decided_nodes - r.exact_nodes, r.decided_nodes);
  }
}

int cmd_summarize(const std::vector<std::string>& args,
                  const obs::ExplainConfig& base, bool json,
                  const std::string& export_spec) {
  if (args.size() != 1) return usage_error("summarize takes one trace");
  obs::ParsedTraceFile log;
  if (!load(args[0], log)) return 2;

  obs::ExplainConfig config = base;
  config.collect_spans = !export_spec.empty();
  const obs::ExplainReport report = obs::explain_trace(log.events, config);

  if (json) {
    std::fputs(obs::explain_json(report).c_str(), stdout);
  } else {
    std::printf("%s: %s %s\n", args[0].c_str(),
                log.binary ? "binary" : "jsonl",
                report.stats.one_line().c_str());
    print_report(report);
  }
  if (!export_spec.empty()) {
    const std::string kChrome = "chrome:";
    if (export_spec.rfind(kChrome, 0) != 0 ||
        export_spec.size() == kChrome.size()) {
      return usage_error("unknown --export format (expected chrome:PATH)");
    }
    const std::string out = export_spec.substr(kChrome.size());
    if (!obs::write_explain_chrome_file(out, report)) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 2;
    }
    if (!json) {
      std::printf("chrome icicle: %zu nodes -> %s (open in "
                  "ui.perfetto.dev)\n",
                  report.nodes.size(), out.c_str());
    }
  }
  return report.exact_ok() ? 0 : 1;
}

int cmd_node(const std::vector<std::string>& args,
             const obs::ExplainConfig& config, bool json) {
  if (args.size() != 2) return usage_error("node takes <id> <trace>");
  char* end = nullptr;
  const unsigned long id = std::strtoul(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0') {
    return usage_error("node id must be a number");
  }
  obs::ParsedTraceFile log;
  if (!load(args[1], log)) return 2;
  const obs::ExplainReport report = obs::explain_trace(log.events, config);
  for (const obs::NodeAttribution& n : report.nodes) {
    if (n.node != static_cast<obs::NodeId>(id)) continue;
    if (json) {
      std::printf("{\n  \"node\": %u,\n  \"wake\": %lld,\n"
                  "  \"decision\": %lld,\n  \"latency\": %lld,\n"
                  "  \"color\": %d,\n  \"resets\": %u,\n  \"exact\": %s",
                  n.node, static_cast<long long>(n.wake_slot),
                  static_cast<long long>(n.decision_slot),
                  static_cast<long long>(n.latency()), n.final_color,
                  n.resets, n.exact() ? "true" : "false");
      for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
        std::printf(",\n  \"cause.%s\": %lld",
                    obs::cause_name(static_cast<obs::Cause>(c)),
                    static_cast<long long>(n.causes[c]));
      }
      std::printf("\n}\n");
      return 0;
    }
    std::printf("node %u: wake %lld decision %lld latency %lld color %d "
                "resets %u%s\n",
                n.node, static_cast<long long>(n.wake_slot),
                static_cast<long long>(n.decision_slot),
                static_cast<long long>(n.latency()), n.final_color,
                n.resets, n.exact() ? " (exact)" : "");
    std::printf("%-12s %8s %8s %8s %8s\n", "cause", "total", "a0", "ai",
                "r");
    for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
      std::printf("%-12s %8lld %8lld %8lld %8lld\n",
                  obs::cause_name(static_cast<obs::Cause>(c)),
                  static_cast<long long>(n.causes[c]),
                  static_cast<long long>(n.by_phase[0][c]),
                  static_cast<long long>(n.by_phase[1][c]),
                  static_cast<long long>(n.by_phase[2][c]));
    }
    return 0;
  }
  std::fprintf(stderr, "error: node %lu not in trace\n", id);
  return 2;
}

int cmd_diff(const std::vector<std::string>& args,
             const obs::ExplainConfig& config, bool json,
             const obs::ExplainDiffOptions& options) {
  if (args.size() != 2) return usage_error("diff takes <traceA> <traceB>");
  obs::ParsedTraceFile log_a;
  obs::ParsedTraceFile log_b;
  if (!load(args[0], log_a) || !load(args[1], log_b)) return 2;
  const obs::ExplainReport a = obs::explain_trace(log_a.events, config);
  const obs::ExplainReport b = obs::explain_trace(log_b.events, config);
  const obs::ExplainDiff diff = obs::diff_explain(a, b, options);
  if (json) {
    std::fputs(obs::explain_diff_json(diff).c_str(), stdout);
    return 0;
  }
  std::printf("A %s: %zu decided nodes, mean latency %.2f\n",
              args[0].c_str(), diff.nodes_a, diff.mean_latency_a);
  std::printf("B %s: %zu decided nodes, mean latency %.2f\n",
              args[1].c_str(), diff.nodes_b, diff.mean_latency_b);
  std::printf("speedup (A/B): %.2fx\n", diff.speedup);
  std::printf("%-12s %9s %9s %9s %20s %s\n", "cause", "mean A", "mean B",
              "delta", "ci95", "significant");
  for (const obs::CauseDelta& d : diff.causes) {
    std::printf("%-12s %9.2f %9.2f %+9.2f [%8.2f,%8.2f ] %s\n",
                obs::cause_name(d.cause), d.mean_a, d.mean_b, d.delta_mean,
                d.ci_lo, d.ci_hi, d.significant ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing subcommand");
  const std::string cmd = argv[1];

  // Positionals follow the subcommand and precede any flags; hand the
  // remaining `--` tokens to CliFlags.
  std::vector<std::string> args;
  int i = 2;
  for (; i < argc && std::string(argv[i]).rfind("--", 0) != 0; ++i) {
    args.emplace_back(argv[i]);
  }
  std::vector<const char*> flag_argv = {argv[0]};
  for (; i < argc; ++i) flag_argv.push_back(argv[i]);

  CliFlags flags;
  flags.add_int("kappa2", 0, "the run's kappa2 (0 = unknown)");
  flags.add_int("passive-slots", 0,
                "passive-listen prefix of each A_i phase, "
                "Params::passive_slots() (0 = unknown)");
  flags.add_bool("json", false, "flat machine-readable output");
  flags.add_string("export", "",
                   "summarize: write a per-node cause-span icicle; "
                   "format chrome:PATH");
  flags.add_int("resamples", 1000, "diff: bootstrap resampling rounds");
  flags.add_int("seed", 0x5EEDED, "diff: bootstrap seed");
  flags.add_double("confidence", 0.95, "diff: CI confidence level");
  if (!flags.parse(static_cast<int>(flag_argv.size()), flag_argv.data())) {
    return usage_error(flags.error().c_str());
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("urn_explain").c_str());
    return 0;
  }

  obs::ExplainConfig config;
  config.kappa2 = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, flags.get_int("kappa2")));
  config.passive_slots =
      std::max<std::int64_t>(0, flags.get_int("passive-slots"));
  const bool json = flags.get_bool("json");

  if (cmd == "summarize") {
    return cmd_summarize(args, config, json, flags.get_string("export"));
  }
  if (cmd == "node") return cmd_node(args, config, json);
  if (cmd == "diff") {
    obs::ExplainDiffOptions options;
    options.resamples = static_cast<std::size_t>(
        std::max<std::int64_t>(0, flags.get_int("resamples")));
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    options.confidence = flags.get_double("confidence");
    return cmd_diff(args, config, json, options);
  }
  return usage_error(("unknown subcommand '" + cmd + "'").c_str());
}
