/// \file urn_postmortem.cpp
/// \brief Inspect and resume postmortem bundles (obs/postmortem.hpp).
///
/// A bundle directory (written by `--postmortem-dir` on urn_sim and the
/// experiment binaries) holds a versioned engine checkpoint
/// (`checkpoint.urnc`), the flight-recorder event ring (`ring.bin`), a
/// `manifest.json`, and — when a violation was captured — `monitor.json`
/// (+ `telemetry.json`).  This tool renders all of that human-readable
/// and replays the checkpoint:
///
///   urn_postmortem --in out/pm/trial0000                # inspect bundle
///   urn_postmortem --in ckpt.urnc --node 17 --tail 50   # one node's view
///   urn_postmortem --in out/pm/trial0000 --resume       # re-run from it
///
/// `--resume` rebuilds the checkpointed engine (aligned or misaligned),
/// restores its state and runs to the scenario's slot budget; the result
/// is bit-identical to the uninterrupted run (same RNG draws, same
/// RunStats, same coloring).  Exit codes: 0 = ok (resume: valid
/// coloring), 1 = resumed run invalid/incomplete, 2 = unreadable input.

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "obs/bintrace.hpp"
#include "obs/event.hpp"
#include "support/cli.hpp"

namespace {

using namespace urn;

[[nodiscard]] bool is_directory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

[[nodiscard]] bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/// Print a small text file (manifest.json, CRASH.txt) verbatim, indented.
void print_file(const std::string& label, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::printf("%s:\n", label.c_str());
  char buf[4096];
  std::string body;
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, got);
  }
  std::fclose(f);
  std::printf("  ");
  for (const char c : body) {
    std::putchar(c);
    if (c == '\n') std::printf("  ");
  }
  std::printf("\n");
}

void print_event(const obs::Event& e) {
  std::printf("  slot %-7lld node %-5u %-12s", static_cast<long long>(e.slot),
              e.node, obs::kind_name(e.kind));
  switch (e.kind) {
    case obs::EventKind::kTransmit:
    case obs::EventKind::kDelivery:
    case obs::EventKind::kDrop:
      std::printf(" msg=%s color=%d value=%lld", obs::msg_name(e.msg),
                  e.color, static_cast<long long>(e.value));
      if (e.peer != obs::kNoNode) std::printf(" peer=%u", e.peer);
      break;
    case obs::EventKind::kPhase:
      std::printf(" phase=%s color=%d", obs::phase_name(e.phase), e.color);
      break;
    case obs::EventKind::kReset:
      std::printf(" color=%d counter=%lld", e.color,
                  static_cast<long long>(e.value));
      break;
    default:
      break;
  }
  std::printf("\n");
}

void print_timeline(const std::string& ring_path, std::int64_t node,
                    std::int64_t around, std::int64_t window,
                    std::int64_t tail) {
  const obs::ParsedBinFile ring = obs::read_bin_file(ring_path);
  if (!ring.ok) {
    std::printf("ring: unreadable (%s)\n", ring.error.c_str());
    return;
  }
  std::vector<obs::Event> events;
  events.reserve(ring.events.size());
  for (const obs::Event& e : ring.events) {
    if (node >= 0 && static_cast<std::int64_t>(e.node) != node &&
        static_cast<std::int64_t>(e.peer) != node) {
      continue;
    }
    if (around >= 0 &&
        (e.slot < around - window || e.slot > around + window)) {
      continue;
    }
    events.push_back(e);
  }
  const std::size_t show =
      tail > 0 ? std::min<std::size_t>(events.size(),
                                       static_cast<std::size_t>(tail))
               : events.size();
  std::printf("ring: %zu events retained (%llu dropped upstream), "
              "%zu after filters, showing last %zu\n",
              ring.events.size(),
              static_cast<unsigned long long>(ring.dropped), events.size(),
              show);
  for (std::size_t i = events.size() - show; i < events.size(); ++i) {
    print_event(events[i]);
  }
}

int inspect(const core::LoadedCheckpoint& ck, const std::string& bundle_dir,
            const std::string& ckpt_path, std::int64_t node,
            std::int64_t around, std::int64_t window, std::int64_t tail,
            std::int64_t max_nodes) {
  const core::CheckpointScenario& s = ck.scenario;
  std::printf("checkpoint: %s\n", ckpt_path.c_str());
  std::printf("  version %u, engine %s, position %lld (%s)\n", ck.version,
              ck.kind == obs::postmortem::EngineKind::kAligned
                  ? "aligned"
                  : "misaligned",
              static_cast<long long>(ck.position),
              ck.kind == obs::postmortem::EngineKind::kAligned
                  ? "slot"
                  : "half-slot");
  std::printf("scenario: n=%zu edges=%zu seed=%llu trial=%llu "
              "max_slots=%lld drop=%.3f\n",
              s.num_nodes, s.edges.size(),
              static_cast<unsigned long long>(s.seed),
              static_cast<unsigned long long>(s.trial),
              static_cast<long long>(s.max_slots),
              s.medium.drop_probability);

  const core::CheckpointSummary sum = core::describe_checkpoint(ck);
  if (!sum.ok) {
    std::fprintf(stderr, "error: %s\n", sum.error.c_str());
    return 2;
  }
  std::printf("state: awake=%zu decided=%zu dead=%zu | medium: tx=%llu "
              "deliveries=%llu collisions=%llu dropped=%llu\n",
              sum.awake, sum.decided, sum.dead,
              static_cast<unsigned long long>(sum.stats.transmissions),
              static_cast<unsigned long long>(sum.stats.deliveries),
              static_cast<unsigned long long>(sum.stats.collisions),
              static_cast<unsigned long long>(sum.stats.dropped));

  std::printf("nodes:%s\n",
              node >= 0 ? "" : (max_nodes > 0 ? " (interesting first)" : ""));
  std::printf("  %-6s %-8s %6s %9s %4s %6s %7s %9s %6s\n", "node", "phase",
              "color", "counter", "dec", "awake", "leader", "dec_slot",
              "|P_v|");
  // With no --node filter, show undecided/awake nodes first (the ones a
  // postmortem usually cares about), then decided ones, up to the cap.
  std::vector<std::size_t> order;
  for (std::size_t v = 0; v < sum.nodes.size(); ++v) {
    if (node >= 0 && static_cast<std::int64_t>(v) != node) continue;
    order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto rank = [&](const core::NodeSnapshot& ns) {
                       if (ns.awake && !ns.decided) return 0;
                       if (!ns.awake) return 1;
                       return 2;
                     };
                     return rank(sum.nodes[a]) < rank(sum.nodes[b]);
                   });
  std::size_t shown = 0;
  for (const std::size_t v : order) {
    if (node < 0 && max_nodes > 0 &&
        shown >= static_cast<std::size_t>(max_nodes)) {
      std::printf("  ... %zu more (raise --max-nodes or use --node)\n",
                  order.size() - shown);
      break;
    }
    const core::NodeSnapshot& ns = sum.nodes[v];
    char leader[16];
    if (ns.leader == graph::kInvalidNode) {
      std::snprintf(leader, sizeof(leader), "-");
    } else {
      std::snprintf(leader, sizeof(leader), "%u", ns.leader);
    }
    std::printf("  %-6zu %-8s %6d %9lld %4s %6s %7s %9lld %6zu%s\n", v,
                obs::phase_name(ns.phase), ns.color_index,
                static_cast<long long>(ns.counter), ns.decided ? "yes" : "no",
                ns.awake ? "yes" : "no", leader,
                static_cast<long long>(ns.decision_slot), ns.competitors,
                ns.dead ? "  DEAD" : "");
    ++shown;
  }

  if (!bundle_dir.empty()) {
    const std::string ring =
        bundle_dir + "/" + obs::postmortem::kRingFileName;
    if (file_exists(ring)) print_timeline(ring, node, around, window, tail);
    print_file("manifest",
               bundle_dir + "/" + obs::postmortem::kManifestFileName);
    if (file_exists(bundle_dir + "/" +
                    obs::postmortem::kMonitorFileName)) {
      print_file("monitor (violations captured)",
                 bundle_dir + "/" + obs::postmortem::kMonitorFileName);
    }
    if (file_exists(bundle_dir + "/CRASH.txt")) {
      print_file("CRASH", bundle_dir + "/CRASH.txt");
    }
  }
  return 0;
}

int resume(const core::LoadedCheckpoint& ck) {
  std::printf("resume: %s engine from position %lld\n",
              ck.kind == obs::postmortem::EngineKind::kAligned
                  ? "aligned"
                  : "misaligned",
              static_cast<long long>(ck.position));
  const core::ResumeResult res = core::resume_coloring(ck);
  if (!res.ok) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    return 2;
  }
  const core::RunResult& run = res.run;
  std::printf("resumed: slots_run=%lld tx=%llu deliveries=%llu "
              "collisions=%llu dropped=%llu all_decided=%s\n",
              static_cast<long long>(run.medium.slots_run),
              static_cast<unsigned long long>(run.medium.transmissions),
              static_cast<unsigned long long>(run.medium.deliveries),
              static_cast<unsigned long long>(run.medium.collisions),
              static_cast<unsigned long long>(run.medium.dropped),
              run.all_decided ? "yes" : "no");
  std::printf("coloring: valid=%s max_color=%d leaders=%zu resets=%llu "
              "mean_T=%.0f max_T=%lld\n",
              run.check.valid() ? "yes" : "no", run.max_color,
              run.num_leaders,
              static_cast<unsigned long long>(run.total_resets),
              run.mean_latency(), static_cast<long long>(run.max_latency()));
  return run.check.valid() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.add_string("in", "",
                   "postmortem bundle directory or checkpoint.urnc file");
  flags.add_bool("resume", false,
                 "resume the checkpointed run to completion instead of "
                 "inspecting it (bit-identical to the uninterrupted run)");
  flags.add_int("node", -1, "restrict state dump and timeline to one node");
  flags.add_int("around", -1,
                "restrict the ring timeline to slots within --window of "
                "this slot (-1 = no slot filter)");
  flags.add_int("window", 50, "slot half-width for --around");
  flags.add_int("tail", 30,
                "show only the last N timeline events (0 = all)");
  flags.add_int("max-nodes", 16,
                "cap the per-node state dump (0 = every node)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage("urn_postmortem").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("urn_postmortem").c_str());
    return 0;
  }
  const std::string in = flags.get_string("in");
  if (in.empty()) {
    std::fprintf(stderr, "error: --in is required (bundle dir or "
                         ".urnc checkpoint)\n");
    return 2;
  }

  std::string bundle_dir;
  std::string ckpt_path = in;
  if (is_directory(in)) {
    bundle_dir = in;
    ckpt_path = in + "/" + urn::obs::postmortem::kCkptFileName;
  }
  const urn::core::LoadedCheckpoint ck =
      urn::core::load_checkpoint(ckpt_path);
  if (!ck.ok) {
    std::fprintf(stderr, "error: %s\n", ck.error.c_str());
    return 2;
  }
  if (flags.get_bool("resume")) return resume(ck);
  return inspect(ck, bundle_dir, ckpt_path, flags.get_int("node"),
                 flags.get_int("around"), flags.get_int("window"),
                 flags.get_int("tail"), flags.get_int("max-nodes"));
}
