/// \file urn_top.cpp
/// \brief Live telemetry viewer: tail the JSONL snapshot stream a
///        `--telemetry-out` run appends to and render a refreshing
///        one-screen status.
///
/// Each line of the stream is one flat-JSON registry snapshot (the
/// format `obs::parse_bench_json` reads — see obs/telemetry.hpp).  The
/// viewer re-reads the file every `--interval-ms`, renders the newest
/// snapshot, and derives *rates* (slots/s, transmissions/s, ...) from
/// the last two snapshots' counter deltas over their `telemetry.wall_ms`
/// spacing — so a stalled producer shows rates dropping to zero while
/// totals hold.
///
/// Examples:
///   urn_sim --trials 500 --jobs 0 --telemetry-out /tmp/t.jsonl &
///   urn_top --in /tmp/t.jsonl                 # follow until Ctrl-C
///   urn_top --in /tmp/t.jsonl --once          # render newest and exit
///
/// Exit status: 0 after --once or when the stream ends a follow (the
/// producer's final snapshot renders and the file stops growing for
/// `--exit-after-idle` intervals, 0 = follow forever); 2 on usage / I/O
/// errors.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/regress.hpp"
#include "support/cli.hpp"

namespace {

using urn::obs::BenchDoc;
using urn::obs::BenchEntry;

/// The last two non-empty lines of the stream (older first).
struct Tail {
  std::optional<BenchDoc> prev;
  std::optional<BenchDoc> last;
  std::size_t lines = 0;
};

Tail read_tail(const std::string& path) {
  Tail tail;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return tail;
  std::string line, prev_text, last_text;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line += buf;
    if (line.empty() || line.back() != '\n') continue;  // partial write
    if (line.find_first_not_of(" \t\r\n") != std::string::npos) {
      prev_text = std::move(last_text);
      last_text = std::move(line);
      ++tail.lines;
    }
    line.clear();
  }
  std::fclose(f);
  if (!prev_text.empty()) {
    BenchDoc doc = urn::obs::parse_bench_json(prev_text);
    if (doc.ok) tail.prev = std::move(doc);
  }
  if (!last_text.empty()) {
    BenchDoc doc = urn::obs::parse_bench_json(last_text);
    if (doc.ok) tail.last = std::move(doc);
  }
  return tail;
}

/// Numeric lookup; nullopt when the key is absent or non-numeric.
std::optional<double> num(const BenchDoc& doc, std::string_view key) {
  const BenchEntry* e = doc.find(key);
  if (e == nullptr || !e->numeric) return std::nullopt;
  return e->value;
}

double value_or(const BenchDoc& doc, std::string_view key, double fallback) {
  return num(doc, key).value_or(fallback);
}

/// Counter rate in units/s between two snapshots (0 when underivable).
double rate(const Tail& tail, std::string_view key) {
  if (!tail.prev.has_value() || !tail.last.has_value()) return 0.0;
  const auto now = num(*tail.last, key);
  const auto before = num(*tail.prev, key);
  const auto wall_now = num(*tail.last, "telemetry.wall_ms");
  const auto wall_before = num(*tail.prev, "telemetry.wall_ms");
  if (!now || !before || !wall_now || !wall_before) return 0.0;
  const double dt_s = (*wall_now - *wall_before) / 1000.0;
  if (dt_s <= 0.0) return 0.0;
  return (*now - *before) / dt_s;
}

/// "12.3k" / "4.56M" style compaction for counts and rates.
std::string human(double v) {
  char buf[32];
  const double a = v < 0 ? -v : v;
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (a >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

/// One histogram summary line, if `<name>.count` is present.
void print_histogram(const BenchDoc& doc, const char* label,
                     const std::string& name) {
  const auto count = num(doc, name + ".count");
  if (!count) return;
  std::printf("  %-10s n=%-9s mean %-9s p50 %-9s p95 %-9s max %s\n", label,
              human(*count).c_str(),
              human(value_or(doc, name + ".mean", 0)).c_str(),
              human(value_or(doc, name + ".p50", 0)).c_str(),
              human(value_or(doc, name + ".p95", 0)).c_str(),
              human(value_or(doc, name + ".max", 0)).c_str());
}

void render(const std::string& path, const Tail& tail, bool follow) {
  if (follow) std::printf("\x1b[H\x1b[2J");  // home + clear
  const BenchDoc& doc = *tail.last;
  std::printf("urn_top — %s\n", path.c_str());
  std::printf("  snapshot #%-6.0f uptime %.1fs    (%zu snapshots in stream)\n",
              value_or(doc, "telemetry.seq", 0),
              value_or(doc, "telemetry.uptime_s", 0), tail.lines);

  if (num(doc, "engine.slots")) {
    std::printf("engine\n");
    std::printf("  slots      %-9s (%s/s)      node-slots %-9s (%s/s)\n",
                human(value_or(doc, "engine.slots", 0)).c_str(),
                human(rate(tail, "engine.slots")).c_str(),
                human(value_or(doc, "engine.node_slots", 0)).c_str(),
                human(rate(tail, "engine.node_slots")).c_str());
    std::printf("  runs       %.0f started, %.0f completed    undecided %.0f"
                "    decisions %s\n",
                value_or(doc, "engine.runs", 0),
                value_or(doc, "engine.runs_completed", 0),
                value_or(doc, "engine.undecided", 0),
                human(value_or(doc, "engine.decisions", 0)).c_str());
    std::printf("  medium     tx %-9s dlv %-9s col %-9s drop %-9s\n",
                human(value_or(doc, "engine.transmissions", 0)).c_str(),
                human(value_or(doc, "engine.deliveries", 0)).c_str(),
                human(value_or(doc, "engine.collisions", 0)).c_str(),
                human(value_or(doc, "engine.drops", 0)).c_str());
    std::printf("  rates/s    tx %-9s dlv %-9s col %-9s drop %-9s\n",
                human(rate(tail, "engine.transmissions")).c_str(),
                human(rate(tail, "engine.deliveries")).c_str(),
                human(rate(tail, "engine.collisions")).c_str(),
                human(rate(tail, "engine.drops")).c_str());
  }

  const auto workers = num(doc, "pool.workers");
  if (workers) {
    std::printf("pool       %.0f workers, %s chunks claimed\n", *workers,
                human(value_or(doc, "pool.chunks", 0)).c_str());
    const double busy_total = value_or(doc, "pool.busy.ns", 0);
    const double wait_total = value_or(doc, "pool.wait.ns", 0);
    const double denom = busy_total + wait_total;
    std::printf("  busy %.3fs  wait %.3fs  utilization %.0f%%\n",
                busy_total / 1e9, wait_total / 1e9,
                denom > 0 ? 100.0 * busy_total / denom : 0.0);
    for (std::size_t w = 0; w < static_cast<std::size_t>(*workers); ++w) {
      const std::string stem = "pool.worker" + std::to_string(w);
      const auto busy = num(doc, stem + ".busy.ns");
      if (!busy) continue;
      const double share = busy_total > 0 ? *busy / busy_total : 0.0;
      const int bars = static_cast<int>(share * 40.0 + 0.5);
      std::printf("  w%-2zu %6.3fs %5s chunks |%-40.*s|\n", w, *busy / 1e9,
                  human(value_or(doc, stem + ".chunks", 0)).c_str(), bars,
                  "########################################");
    }
  }

  std::printf("latency\n");
  print_histogram(doc, "decision", "run.decision_latency");
  print_histogram(doc, "chunk-wait", "pool.chunk_wait.ns");

  // Any counters outside the families above (e.g. m2.cells_done) —
  // shown raw so custom instrumentation surfaces without a new viewer.
  bool header = false;
  for (const BenchEntry& e : doc.entries) {
    if (!e.numeric) continue;
    const std::string& k = e.key;
    if (k.rfind("telemetry.", 0) == 0 || k.rfind("engine.", 0) == 0 ||
        k.rfind("pool.", 0) == 0 || k.rfind("run.", 0) == 0) {
      continue;
    }
    if (!header) {
      std::printf("other\n");
      header = true;
    }
    std::printf("  %-32s %s\n", k.c_str(), human(e.value).c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace urn;

  CliFlags flags;
  flags.add_string("in", "",
                   "telemetry JSONL stream to follow (required; produced "
                   "by any --telemetry-out flag)");
  flags.add_int("interval-ms", 500, "refresh period in milliseconds");
  flags.add_bool("once", false,
                 "render the newest snapshot once and exit (no screen "
                 "clearing; scripting / tests)");
  flags.add_int("exit-after-idle", 0,
                "in follow mode, exit 0 after this many refreshes without "
                "new snapshots (0 = follow until interrupted)");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage("urn_top").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("urn_top").c_str());
    return 0;
  }
  const std::string path = flags.get_string("in");
  if (path.empty()) {
    std::fprintf(stderr, "error: --in is required\n%s",
                 flags.usage("urn_top").c_str());
    return 2;
  }
  const bool once = flags.get_bool("once");
  const auto interval = std::chrono::milliseconds(
      std::max<std::int64_t>(1, flags.get_int("interval-ms")));
  const auto idle_limit = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("exit-after-idle")));

  std::size_t last_lines = 0;
  std::size_t idle = 0;
  for (;;) {
    const Tail tail = read_tail(path);
    if (!tail.last.has_value()) {
      if (once) {
        std::fprintf(stderr, "error: no parsable snapshot in %s\n",
                     path.c_str());
        return 2;
      }
      // Producer may not have written its first snapshot yet.
      std::printf("\x1b[H\x1b[2Jurn_top — %s\n  (waiting for snapshots)\n",
                  path.c_str());
      std::fflush(stdout);
    } else {
      render(path, tail, !once);
      if (once) return 0;
      if (tail.lines == last_lines) {
        if (idle_limit != 0 && ++idle >= idle_limit) return 0;
      } else {
        idle = 0;
        last_lines = tail.lines;
      }
    }
    std::this_thread::sleep_for(interval);
  }
}
