/// \file urn_trace.cpp
/// \brief Trace analyzer CLI: replay an event log recorded by a traced
///        run (JSONL or compact binary, auto-detected) and (a) validate
///        every node's Fig. 2 walk, (b) print per-node timelines,
///        (c) re-derive the per-window metrics CSV, (d) export a
///        Perfetto / chrome://tracing timeline.
///
/// Examples:
///   urn_trace --log run.jsonl                      # summary + validation
///   urn_trace --log run.bin                        # binary, auto-detected
///   urn_trace --log run.jsonl --kappa2 12          # also check tc(κ₂+1)
///   urn_trace --log run.jsonl --timelines          # per-node histories
///   urn_trace --log run.jsonl --metrics-out m.csv --window 64
///   urn_trace --log run.jsonl --latency-budget 40000   # Thm 3 replay
///   urn_trace --log run.bin --export chrome:run.json   # open in Perfetto
///
/// Exit status: 0 when the log passes every enabled check, 1 when
/// violations were found, 2 on usage / I/O errors (unreadable log,
/// malformed header / first line, unknown export format).

#include <algorithm>
#include <cstdio>
#include <string>

#include "obs/bintrace.hpp"
#include "obs/chrome.hpp"
#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace urn;

  CliFlags flags;
  flags.add_string("log", "",
                   "event log to analyze, JSONL or binary (required)");
  flags.add_int("kappa2", 0,
                "the run's kappa2; enables the R -> A_{tc(k2+1)} "
                "multiple-of check (0 = skip)");
  flags.add_bool("timelines", false, "print one line per node");
  flags.add_bool("stats", false,
                 "print one line of per-kind event counts + slot range "
                 "and exit (no validation)");
  flags.add_int("max-violations", 10, "violations to print in detail");
  flags.add_string("metrics-out", "",
                   "re-derive the per-window metrics series from the log "
                   "and write it as CSV here");
  flags.add_int("window", 1, "window width in slots for --metrics-out");
  flags.add_int("latency-budget", 0,
                "per-node Theorem 3 slot budget; replays the online "
                "invariant monitor over the log (0 = skip)");
  flags.add_string("export", "",
                   "export the log as a timeline; format chrome:PATH "
                   "writes Chrome trace-event JSON for Perfetto / "
                   "chrome://tracing");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage("urn_trace").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("urn_trace").c_str());
    return 0;
  }
  const std::string path = flags.get_string("log");
  if (path.empty()) {
    std::fprintf(stderr, "error: --log is required\n%s",
                 flags.usage("urn_trace").c_str());
    return 2;
  }

  const obs::ParsedTraceFile log = obs::read_trace_file(path);
  if (!log.ok) {
    std::fprintf(stderr, "error: %s\n", log.error.c_str());
    return 2;
  }
  if (flags.get_bool("stats")) {
    // The quick indexer (shared with urn_explain): per-kind counts and
    // slot range, one line, no validation.
    const obs::TraceStats stats = obs::compute_trace_stats(log.events);
    std::printf("%s: %s %s\n", path.c_str(),
                log.binary ? "binary" : "jsonl", stats.one_line().c_str());
    return 0;
  }
  std::printf("%s: %s, %zu records, %zu events, %zu malformed\n",
              path.c_str(), log.binary ? "binary" : "jsonl", log.records,
              log.events.size(), log.bad);
  if (log.dropped != 0) {
    std::printf("ring capture: %llu earlier events dropped\n",
                static_cast<unsigned long long>(log.dropped));
  }

  // ---- per-kind totals ----------------------------------------------------
  std::size_t by_kind[obs::kNumEventKinds] = {};
  obs::Slot last_slot = 0;
  for (const obs::Event& e : log.events) {
    ++by_kind[static_cast<std::size_t>(e.kind)];
    last_slot = std::max(last_slot, e.slot);
  }
  std::printf("slots [0, %lld]:", static_cast<long long>(last_slot));
  for (std::size_t k = 0; k < obs::kNumEventKinds; ++k) {
    if (by_kind[k] != 0) {
      std::printf(" %s=%zu", obs::kind_name(static_cast<obs::EventKind>(k)),
                  by_kind[k]);
    }
  }
  std::printf("\n");

  // ---- per-node timelines -------------------------------------------------
  const auto timelines = obs::build_timelines(log.events);
  std::size_t decided = 0;
  obs::Slot max_latency = 0;
  for (const obs::NodeTimeline& t : timelines) {
    if (t.decided()) {
      ++decided;
      max_latency = std::max(max_latency, t.latency());
    }
  }
  std::printf("nodes: %zu seen, %zu decided, max T_v %lld\n",
              timelines.size(), decided,
              static_cast<long long>(max_latency));
  if (flags.get_bool("timelines")) {
    for (const obs::NodeTimeline& t : timelines) {
      std::printf("  node %-5u wake %-7lld decide %-7lld T %-7lld "
                  "color %-4d tx %-6llu rx %-6llu resets %-4llu phases ",
                  t.node, static_cast<long long>(t.wake_slot),
                  static_cast<long long>(t.decision_slot),
                  static_cast<long long>(t.latency()), t.final_color,
                  static_cast<unsigned long long>(t.transmissions),
                  static_cast<unsigned long long>(t.deliveries),
                  static_cast<unsigned long long>(t.resets));
      for (std::size_t i = 0; i < t.phases.size(); ++i) {
        const obs::Event& p = t.phases[i];
        if (i != 0) std::printf(">");
        if (p.phase == static_cast<std::uint8_t>(obs::PhaseCode::kRequest)) {
          std::printf("R");
        } else if (p.phase ==
                   static_cast<std::uint8_t>(obs::PhaseCode::kVerify)) {
          std::printf("A%d", p.color);
        } else {
          std::printf("C%d", p.color);
        }
      }
      std::printf("\n");
    }
  }

  // ---- optional metrics re-derivation ------------------------------------
  const std::string metrics_out = flags.get_string("metrics-out");
  if (!metrics_out.empty()) {
    obs::MetricsSink metrics(flags.get_int("window"));
    for (const obs::Event& e : log.events) metrics.record(e);
    const obs::TimeSeries series = metrics.finish(last_slot + 1);
    if (!series.write_csv_file(metrics_out)) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 2;
    }
    std::printf("metrics: %zu windows of %lld slots -> %s "
                "(peak collisions/window %llu)\n",
                series.size(), static_cast<long long>(series.window()),
                metrics_out.c_str(),
                static_cast<unsigned long long>(series.peak_collisions()));
  }

  // ---- optional timeline export ------------------------------------------
  const std::string export_spec = flags.get_string("export");
  if (!export_spec.empty()) {
    const std::string kChrome = "chrome:";
    if (export_spec.rfind(kChrome, 0) != 0 ||
        export_spec.size() == kChrome.size()) {
      std::fprintf(stderr,
                   "error: unknown --export format '%s' "
                   "(expected chrome:PATH)\n",
                   export_spec.c_str());
      return 2;
    }
    const std::string out = export_spec.substr(kChrome.size());
    if (!obs::write_chrome_trace_file(out, log.events)) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 2;
    }
    std::printf("chrome trace: %zu events -> %s (open in ui.perfetto.dev "
                "or chrome://tracing)\n",
                log.events.size(), out.c_str());
  }

  // ---- online-monitor replay ---------------------------------------------
  const auto kappa2 =
      static_cast<std::uint32_t>(std::max<std::int64_t>(
          0, flags.get_int("kappa2")));
  const auto latency_budget = static_cast<obs::Slot>(
      std::max<std::int64_t>(0, flags.get_int("latency-budget")));
  std::uint64_t monitor_violations = 0;
  if (latency_budget > 0) {
    obs::MonitorConfig config;
    config.kappa2 = kappa2;
    config.latency_budget = latency_budget;
    obs::InvariantMonitorSink monitor(std::move(config));
    for (const obs::Event& e : log.events) monitor.record(e);
    monitor.flush();
    const obs::MonitorReport mon = monitor.report();
    obs::print_monitor_report(mon, stdout);
    monitor_violations = mon.total_violations();
  }

  // ---- Fig. 2 legality ----------------------------------------------------
  const obs::Fig2Report report = obs::validate_fig2(log.events, kappa2);
  std::printf("fig2: %zu nodes, %zu transitions checked, %zu violations\n",
              report.nodes_checked, report.transitions_checked,
              report.violations.size());
  const auto max_print = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("max-violations")));
  for (std::size_t i = 0;
       i < report.violations.size() && i < max_print; ++i) {
    const obs::Fig2Violation& v = report.violations[i];
    std::printf("  VIOLATION node %u slot %lld: %s\n", v.node,
                static_cast<long long>(v.slot), v.what.c_str());
  }
  if (report.violations.size() > max_print) {
    std::printf("  ... and %zu more\n",
                report.violations.size() - max_print);
  }
  if (!report.ok() || monitor_violations != 0) return 1;
  std::printf("OK: every node's trajectory is a legal Fig. 2 walk\n");
  return 0;
}
